"""Protocol messages exchanged between root and local nodes.

The communication model (Section 3) is single-direction *flows*:
up-flows carry raw events, partial results, and event rates from local
nodes to the root; down-flows carry window assignments (types, measures,
sizes, deltas, watermarks) from the root to local nodes.

Message wire sizes are computed structurally from their content by
:func:`sizeof_message`, in the system's wire format (binary for
everything except the Disco baseline, which uses strings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.runtime.serialization import WireFormat, message_size
from repro.streams.batch import EventBatch
from repro.wire.format import partial_wire_slots


@dataclass(frozen=True)
class Message:
    """Base class; every message names its sender."""

    sender: str


# -- source injection (data stream node -> local node, zero network cost) --

@dataclass(frozen=True)
class SourceBatch(Message):
    """Events produced by the data generator co-located with a local
    node.  Arrives via the kernel, not the network fabric, because the
    generator runs on the node itself (Section 5, Data Generators)."""

    events: EventBatch


# -- up-flows ----------------------------------------------------------------

@dataclass(frozen=True)
class RawEvents(Message):
    """Raw forwarded events (centralized aggregation / Deco init).

    ``start`` is the absolute stream position of the first event;
    ``-1`` for fire-and-forget forwarding (Central), >= 0 for the Deco
    bootstrap, whose root detects gaps from dropped messages and asks
    for a resend (failure model, Section 4.3.4).
    """

    window_index: int
    events: EventBatch
    start: int = -1


@dataclass(frozen=True)
class ResendRequest(Message):
    """Down-flow NACK: re-send raw events from ``from_position``."""

    from_position: int


@dataclass(frozen=True)
class RateReport(Message):
    """Measured event rate (Deco_mon initialization step)."""

    window_index: int
    event_rate: float
    events_seen: int


@dataclass(frozen=True)
class LocalWindowReport(Message):
    """The single up-flow of Deco_sync / Deco_async calculation steps:
    partial result of the local slice, raw buffer contents, the measured
    event rate, and the slice statistics (count, first/last timestamps,
    Section 4.2.2)."""

    window_index: int
    epoch: int
    partial: Any
    slice_count: int
    event_rate: float
    buffer: EventBatch = field(default_factory=EventBatch.empty)
    fbuffer: EventBatch | None = None
    ebuffer: EventBatch | None = None
    #: Absolute position in the sender's stream where this window's
    #: coverage starts (the speculative start for Deco_async).
    spec_start: int = -1
    #: Absolute position where the slice starts (== ``spec_start`` when
    #: there is no front buffer).
    slice_start: int = -1
    first_ts: int = -1
    last_ts: int = -1


@dataclass(frozen=True)
class FrontBuffer(Message):
    """Deco_async: the speculative window's front buffer, shipped as
    soon as it fills (it is the first region the window consumes).

    The paper bundles it with the window report (Algorithm 4); shipping
    it eagerly is an implementation refinement that lets the root
    complete the *previous* window's tail without waiting a full window
    — the front buffer's entire purpose is "to make room for prediction
    error" at the boundary (Section 4.2.3).
    """

    window_index: int
    epoch: int
    spec_start: int
    events: EventBatch


@dataclass(frozen=True)
class CorrectionReport(Message):
    """Correction-step up-flow: the partial over the *actual* local
    window plus the last event (the actual sizes come from rates and
    "may or may not belong to the global window", Section 4.3.1)."""

    window_index: int
    epoch: int
    partial: Any
    count: int
    last_event: EventBatch


# -- down-flows ---------------------------------------------------------------

@dataclass(frozen=True)
class WindowAssignment(Message):
    """Prediction-step down-flow: predicted size and delta (Deco_sync /
    Deco_async), or the actual size with ``delta == 0`` (Deco_mon).
    Carries the watermark of the previous global window."""

    window_index: int
    epoch: int
    predicted_size: int
    delta: int
    #: Absolute stream position where the window starts (the previous
    #: window's actual end); ``-1`` when the node keeps its own position
    #: (Deco_async speculation).
    start_position: int = -1
    #: Verified position before which the node may drop events
    #: (watermark-driven eviction, Section 4.3.4).
    release_before: int = -1
    watermark: int = -1


@dataclass(frozen=True)
class CorrectionRequest(Message):
    """Correction-step down-flow: the actual local window size for the
    mispredicted window; informs the node its prediction was wrong."""

    window_index: int
    epoch: int
    actual_size: int
    #: Absolute stream position where the mispredicted window starts.
    start_position: int = -1
    watermark: int = -1


@dataclass(frozen=True)
class StartWindow(Message):
    """Verification-complete signal: the local node may start its next
    window (the blocking ack of the synchronous schemes)."""

    window_index: int
    epoch: int
    watermark: int = -1


def _batch_len(batch: EventBatch | None) -> int:
    return 0 if batch is None else len(batch)


def sizeof_message(msg: Message,
                   fmt: WireFormat = WireFormat.BINARY) -> int:
    """Structural wire size of a protocol message.

    The per-type scalar counts mirror the frame schemas of
    :mod:`repro.wire.codec` slot for slot (partials counted through the
    shared :func:`repro.wire.format.partial_wire_slots`), so for binary
    formats ``sizeof_message(msg) == len(codec.encode_message(msg))``
    exactly — a property pinned by the wire tests and CI gate.
    """
    if isinstance(msg, SourceBatch):
        return 0  # generator is co-located with the node
    if isinstance(msg, RawEvents):
        # window_index + start
        return message_size(n_events=len(msg.events), n_scalars=2,
                            fmt=fmt)
    if isinstance(msg, ResendRequest):
        return message_size(n_scalars=1, fmt=fmt)
    if isinstance(msg, RateReport):
        # window_index + event_rate + events_seen
        return message_size(n_scalars=3, fmt=fmt)
    if isinstance(msg, LocalWindowReport):
        n_events = (_batch_len(msg.buffer) + _batch_len(msg.fbuffer)
                    + _batch_len(msg.ebuffer))
        # window/epoch ids + count + rate + spec/slice starts +
        # first/last ts + fbuffer/ebuffer length slots + the partial.
        n_scalars = 10 + partial_wire_slots(msg.partial)
        return message_size(n_events=n_events, n_scalars=n_scalars,
                            fmt=fmt)
    if isinstance(msg, FrontBuffer):
        # window_index + epoch + spec_start
        return message_size(n_events=len(msg.events), n_scalars=3,
                            fmt=fmt)
    if isinstance(msg, CorrectionReport):
        # window_index + epoch + count + the partial.
        n_scalars = 3 + partial_wire_slots(msg.partial)
        return message_size(n_events=len(msg.last_event),
                            n_scalars=n_scalars, fmt=fmt)
    if isinstance(msg, WindowAssignment):
        return message_size(n_scalars=7, fmt=fmt)
    if isinstance(msg, CorrectionRequest):
        return message_size(n_scalars=5, fmt=fmt)
    if isinstance(msg, StartWindow):
        return message_size(n_scalars=3, fmt=fmt)
    raise TypeError(f"unknown message type {type(msg).__name__}")


def make_sizer(
        fmt: WireFormat = WireFormat.BINARY) -> Callable[[Any], int]:
    """A ``msg -> bytes`` sizer bound to one wire format."""
    return lambda msg: sizeof_message(msg, fmt)


def trace_fields(msg: Message) -> dict:
    """Identifying fields of a message for trace-event payloads.

    Always includes the class name; window/epoch ride along when the
    message carries them, so retransmit and state events can name the
    exact protocol round they belong to.
    """
    out = {"msg": type(msg).__name__}
    window = getattr(msg, "window_index", None)
    if window is not None:
        out["window"] = window
    epoch = getattr(msg, "epoch", None)
    if epoch is not None:
        out["epoch"] = epoch
    return out
