"""Local node behaviour base class.

Local nodes are the middle layer of Figure 1: "wimpy but smart devices"
that ingest events from their co-located data stream nodes, run the
local count-window operator, and talk to the root.  This base class owns
the event buffer (absolute positions in the node's stream), event-rate
measurement, and send/metrics plumbing; schemes subclass it with their
state machines.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.context import SchemeContext
from repro.core.protocol import Message, SourceBatch
from repro.runtime.node import RuntimeNode
from repro.runtime.api import ROOT_NAME, local_name
from repro.streams.event import TICKS_PER_SECOND
from repro.streams.watermark import WatermarkTracker


class LocalBehaviorBase:
    """Common machinery for every scheme's local node behaviour."""

    #: CPU factor per arriving event.  Non-blocking schemes (Deco_async,
    #: Approx) aggregate eagerly as events arrive: factor 1.0, window
    #: completion free.  Blocking schemes (Deco_mon, Deco_sync) cannot
    #: start the window computation until the root's message arrives
    #: (Sections 4.2.1-4.2.2), so they only *buffer* on arrival (cheap)
    #: and pay the aggregation as a burst via :meth:`aggregate_then` —
    #: which is exactly why they "have to wait for new messages from the
    #: root" and lose throughput (Section 5.2).
    INGEST_PROCESS_FACTOR = 1.0

    #: Bounded memory: how many local-window-sized chunks of unreleased
    #: events a node may retain before it stops admitting input
    #: (Section 3: local nodes "can store a window of up to 1 million
    #: events"; Deco_sync/async "buffer all events in the memory" only
    #: up to the verified boundary).  Saturated runs use this as the
    #: backpressure signal.
    BACKPRESSURE_WINDOWS = 8

    def __init__(self, index: int, ctx: SchemeContext) -> None:
        self.index = index
        self.ctx = ctx
        self.query = ctx.query
        self.fn = ctx.query.aggregate
        #: This node's stream name — the key standing queries are
        #: admitted under in the multi-query engine.
        self.stream = local_name(index)
        #: The aggregate-bound event buffer: range lifts go through its
        #: range-aggregation index (see :mod:`repro.core.agg_index`).
        #: Constructed through the context so every behaviour of a run
        #: shares one buffer policy.
        self.buffer = ctx.new_buffer(fn=self.fn)
        self.watermark = WatermarkTracker()
        # Rate measurement state: events and first/last timestamps since
        # the previous rate report (Section 4.3.3).
        self._rate_mark_count = 0
        self._rate_mark_ts: int | None = None
        self._last_event_ts: int | None = None
        self._last_rate = 0.0

    # -- Behaviour protocol -------------------------------------------------

    def on_start(self, node: RuntimeNode) -> None:
        """Default: nothing to do until events or control arrive."""

    def input_paused(self) -> bool:
        """Backpressure signal for the input feeder.

        True while the node retains more unreleased events than its
        memory budget allows.
        """
        return self.buffer.retained > self.retention_budget()

    def retention_budget(self) -> int:
        """Unreleased events this node may hold before pausing input.

        The default covers normal operation; schemes with a centralized
        forwarding phase override this to a tight bootstrap budget while
        forwarding (enough for the initialization windows plus slack, so
        backpressure can never deadlock the bootstrap) — holding more
        would only pile un-aggregated raw events onto the root.
        """
        workload = self.ctx.workload
        per_node = max(1, workload.window_size // workload.n_nodes)
        return self.BACKPRESSURE_WINDOWS * per_node

    def bootstrap_budget(self, n_bootstrap_windows: int) -> int:
        """Retention budget while centrally forwarding the first
        ``n_bootstrap_windows`` global windows."""
        workload = self.ctx.workload
        per_node = max(1, workload.window_size // workload.n_nodes)
        g = min(n_bootstrap_windows, workload.n_windows)
        return int(workload.bounds[g, self.index]) + per_node

    def service_time(self, node: RuntimeNode, msg: Any) -> float:
        """CPU cost: ingest+aggregate for events, overhead for control."""
        if isinstance(msg, SourceBatch):
            return (len(msg.events) * node.profile.per_event_process_s()
                    * self.INGEST_PROCESS_FACTOR
                    + node.profile.message_overhead_s)
        return node.profile.message_overhead_s

    def on_message(self, node: RuntimeNode, msg: Any) -> None:
        if isinstance(msg, SourceBatch):
            self._ingest(node, msg)
        elif isinstance(msg, Message):
            self.handle_control(node, msg)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected message {type(msg).__name__}")

    # -- ingestion -----------------------------------------------------------

    def _ingest(self, node: RuntimeNode, msg: SourceBatch) -> None:
        events = msg.events
        if len(events) == 0:
            return
        if self._rate_mark_ts is None:
            self._rate_mark_ts = events.first_ts
        self._last_event_ts = events.last_ts
        self._rate_mark_count += len(events)
        self.buffer.append(events)
        engine = self.ctx.engine
        if engine is not None:
            # Standing queries observe the same ingest order the scheme
            # sees; the engine's storage is fully separate from
            # self.buffer, so backpressure and scheme results are
            # untouched by however many queries are registered.
            engine.append(self.stream, events)
        node.account_events(len(events))
        self.on_events(node)

    def on_events(self, node: RuntimeNode) -> None:
        """Scheme hook: new events are available in :attr:`buffer`."""

    def handle_control(self, node: RuntimeNode, msg: Message) -> None:
        """Scheme hook: a control message arrived from the root."""

    # -- helpers -----------------------------------------------------------------

    @property
    def available(self) -> int:
        """Absolute stream position up to which events have arrived."""
        return self.buffer.end

    def take_rate(self) -> float:
        """Measured event rate since the previous call (events/s).

        "When the local buffer is full, the local node calculates the
        event rate and sends [it] to the root node" (Section 4.3.3); the
        measurement interval is from the previous report to now.
        """
        if (self._rate_mark_ts is None or self._last_event_ts is None
                or self._rate_mark_count == 0):
            return self._last_rate
        span_ticks = self._last_event_ts - self._rate_mark_ts
        if span_ticks <= 0:
            return self._last_rate
        rate = self._rate_mark_count * TICKS_PER_SECOND / span_ticks
        self._last_rate = rate
        self._rate_mark_count = 0
        self._rate_mark_ts = self._last_event_ts
        return rate

    def lift_range(self, start: int, end: int) -> Any:
        """Partial aggregate of buffered positions ``[start, end)``.

        Served from the buffer's range-aggregation index: O(log n)
        combines over precomputed chunk partials for decomposable
        functions, a direct lift for holistic ones.  Only host time
        differs from a from-scratch lift — the partial's bits and the
        simulated CPU cost model are unchanged.
        """
        return self.buffer.lift_range(start, end)

    def aggregate_then(self, node: RuntimeNode, start: int, end: int,
                       then: Callable[[Any], None]) -> None:
        """Aggregate ``[start, end)`` as a CPU burst, then call
        ``then(partial)`` when the burst completes.

        Used by the blocking schemes, whose window aggregation cannot
        overlap with waiting for the root.
        """
        partial = self.lift_range(start, end)
        done = node.occupy(
            (end - start) * node.profile.per_event_process_s())
        if done > node.now:
            node.schedule_at(done, lambda: then(partial))
        else:
            then(partial)

    def send_up(self, node: RuntimeNode, msg: Message) -> None:
        """Send a message to the root, charging serialization CPU for
        any raw events it carries."""
        n_raw = _raw_event_count(msg)
        if n_raw:
            node.occupy(n_raw * node.profile.per_event_serialize_s())
        node.send(ROOT_NAME, msg)

    def apply_watermark(self, watermark: int) -> None:
        """Adopt a root-provided watermark (drop earlier events is the
        callers' job via ``release_before``)."""
        if watermark > self.watermark.current:
            self.watermark.advance(watermark)


def _raw_event_count(msg: Message) -> int:
    """Raw events carried by a protocol message (for CPU costing)."""
    total = 0
    for attr in ("events", "buffer", "fbuffer", "ebuffer", "last_event"):
        batch = getattr(msg, attr, None)
        if batch is not None:
            total += len(batch)
    return total
