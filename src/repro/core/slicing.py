"""Slice and buffer sizing (Sections 4.2.2-4.2.3).

Deco_sync splits each predicted local window into a *local slice*
(partially aggregated in place) and a trailing *local buffer* (raw
events shipped to the root):

    l_slice  = max(0, l-hat - Delta)      (Eq. 3)
    l_buffer = 2 * Delta                  (Eq. 4)

Deco_async splits it three ways so that consecutive speculative windows
can absorb boundary drift on both sides:

    l_slice   = max(0, l-hat - 2 * Delta)   (Eq. 9)
    l_Fbuffer = l_Ebuffer = Delta           (Eq. 10)
    (if l_slice == 0: Fbuffer = Ebuffer = l-hat / 2)

Every speculative window consumes exactly ``l-hat`` events — the only
unbiased choice: consuming more would systematically drift the
speculative start away from the actual boundary.  Between corrections,
that drift performs a reflected random walk inside the ``Delta``-wide
acceptance band; corrections reset it.  This is why Deco_async "executes
more correction steps than Deco_sync" (Section 5.2) even at small rate
changes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

from repro.errors import ConfigurationError


class SyncLayout(NamedTuple):
    """Deco_sync local window layout: slice then buffer."""

    slice_size: int
    buffer_size: int

    @property
    def total(self) -> int:
        """Events consumed per local window (slice + buffer)."""
        return self.slice_size + self.buffer_size


class AsyncLayout(NamedTuple):
    """Deco_async local window layout: Fbuffer, slice, Ebuffer."""

    fbuffer_size: int
    slice_size: int
    ebuffer_size: int

    @property
    def total(self) -> int:
        """Events consumed per speculative local window."""
        return self.fbuffer_size + self.slice_size + self.ebuffer_size


def _check(predicted: int, delta: int) -> None:
    if predicted < 0:
        raise ConfigurationError(
            f"predicted size must be >= 0, got {predicted}")
    if delta < 0:
        raise ConfigurationError(f"delta must be >= 0, got {delta}")


def sync_layout(predicted: int, delta: int) -> SyncLayout:
    """Eq. 3-4: the Deco_sync slice/buffer split."""
    _check(predicted, delta)
    slice_size = predicted - delta if predicted > delta else 0
    return SyncLayout(slice_size=slice_size, buffer_size=2 * delta)


def async_layout(predicted: int, delta: int) -> AsyncLayout:
    """Eq. 9-10: the Deco_async Fbuffer/slice/Ebuffer split."""
    _check(predicted, delta)
    if predicted > 2 * delta:
        return AsyncLayout(fbuffer_size=delta,
                           slice_size=predicted - 2 * delta,
                           ebuffer_size=delta)
    # Degenerate prediction: split the window between the buffers
    # (Section 4.2.3: "If l_slice is 0, we calculate l_Fbuffer and
    # l_Ebuffer as l/2").
    side = (predicted + 1) // 2
    return AsyncLayout(fbuffer_size=side, slice_size=0,
                       ebuffer_size=side)


def sync_covers(layout: SyncLayout, predicted: int, delta: int) -> bool:
    """Whether the sync layout spans every size the verification step can
    accept (``[predicted - delta, predicted + delta)``, Eq. 5-6)."""
    return (layout.slice_size <= max(0, predicted - delta)
            and layout.total >= predicted + delta)


def mon_local_sizes(rates: Sequence[float],
                    global_window: int) -> list[int]:
    """Section 4.1 split: local window sizes proportional to event rates.

    ``l_a = f_a / f_root * l_global``, with the rounding remainder
    assigned by largest fractional part so the sizes always sum to the
    global window size.
    """
    rates = [float(r) for r in rates]
    if not rates or any(r < 0 for r in rates):
        raise ConfigurationError(f"rates must be non-negative: {rates}")
    total = sum(rates)
    if total <= 0:
        raise ConfigurationError("total event rate must be > 0")
    if global_window <= 0:
        raise ConfigurationError(
            f"global window must be > 0, got {global_window}")
    exact = [r / total * global_window for r in rates]
    floors = [int(x) for x in exact]
    remainder = global_window - sum(floors)
    by_fraction = sorted(range(len(rates)),
                         key=lambda i: exact[i] - floors[i], reverse=True)
    for i in by_fraction[:remainder]:
        floors[i] += 1
    return floors
