"""Local window size prediction (Section 4.2.2, Algorithm 1).

The root predicts the next local window size of node ``a`` as the actual
size of the previous window (Eq. 1) and derives a *delta* from the last
two actual sizes (Eq. 2):

    l-hat_{a,Gi}  = l_{a,Gi-1}
    Delta_{a,Gi}  = | l_{a,Gi-1} - l_{a,Gi-2} |

When consecutive windows are nearly equal the raw delta collapses to
zero and even slight rate changes would break predictions, so the paper
records the delta of every window and averages the last ``m`` (the user
parameter controlling how aggressively Deco adapts).  Section 6 notes
fancier predictors as future work; we provide two extras
(:class:`MovingAveragePredictor`, :class:`LinearTrendPredictor`) for the
ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import ConfigurationError


def predict_next(previous: int) -> int:
    """Eq. 1: the predicted size is the previous actual size."""
    return previous


def raw_delta(previous: int, before_previous: int) -> int:
    """Eq. 2: absolute difference of the last two actual sizes."""
    return abs(previous - before_previous)


class DeltaSmoother:
    """Average of the last ``m`` raw deltas (Section 4.2.2).

    Large ``m`` keeps the delta steady; small ``m`` makes it react to
    every change.  ``min_delta`` optionally floors the delta so that the
    buffer never fully vanishes.
    """

    def __init__(self, m: int = 1, min_delta: int = 0) -> None:
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        if min_delta < 0:
            raise ConfigurationError(
                f"min_delta must be >= 0, got {min_delta}")
        self.m = m
        self.min_delta = min_delta
        self._deltas: Deque[int] = deque(maxlen=m)

    def observe(self, delta: int) -> None:
        """Record the raw delta of a completed window."""
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {delta}")
        self._deltas.append(delta)

    @property
    def current(self) -> int:
        """The smoothed delta (ceiling of the window mean)."""
        if not self._deltas:
            return self.min_delta
        mean = sum(self._deltas) / len(self._deltas)
        return max(self.min_delta, int(mean + 0.5))


class LastValuePredictor:
    """The paper's predictor: next size = previous size, delta per Eq. 2
    smoothed over ``m`` windows."""

    name = "last-value"

    def __init__(self, m: int = 1, min_delta: int = 0) -> None:
        self._smoother = DeltaSmoother(m, min_delta)
        self._history: list[int] = []

    def observe(self, actual_size: int) -> None:
        """Record the actual size of a completed window."""
        if actual_size < 0:
            raise ConfigurationError(
                f"actual size must be >= 0, got {actual_size}")
        if self._history:
            self._smoother.observe(raw_delta(actual_size,
                                             self._history[-1]))
        self._history.append(actual_size)
        # Only the last value matters for the prediction itself.
        if len(self._history) > 2:
            del self._history[0]

    @property
    def ready(self) -> bool:
        """Whether at least two windows have been observed (the paper's
        initialization requirement)."""
        return len(self._history) >= 2

    def predict(self) -> tuple[int, int]:
        """The ``(predicted size, delta)`` pair for the next window."""
        if not self._history:
            raise ConfigurationError("predict() before any observation")
        return predict_next(self._history[-1]), self._smoother.current


class MovingAveragePredictor(LastValuePredictor):
    """Ablation predictor: next size = mean of the last ``k`` sizes."""

    name = "moving-average"

    def __init__(self, k: int = 4, m: int = 1, min_delta: int = 0) -> None:
        super().__init__(m, min_delta)
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self._window: Deque[int] = deque(maxlen=k)

    def observe(self, actual_size: int) -> None:
        super().observe(actual_size)
        self._window.append(actual_size)

    def predict(self) -> tuple[int, int]:
        if not self._window:
            raise ConfigurationError("predict() before any observation")
        mean = int(sum(self._window) / len(self._window) + 0.5)
        return mean, self._smoother.current


class LinearTrendPredictor(LastValuePredictor):
    """Ablation predictor: extrapolate the last two sizes linearly."""

    name = "linear-trend"

    def __init__(self, m: int = 1, min_delta: int = 0) -> None:
        super().__init__(m, min_delta)
        self._last_two: Deque[int] = deque(maxlen=2)

    def observe(self, actual_size: int) -> None:
        super().observe(actual_size)
        self._last_two.append(actual_size)

    def predict(self) -> tuple[int, int]:
        if not self._last_two:
            raise ConfigurationError("predict() before any observation")
        if len(self._last_two) == 1:
            return self._last_two[0], self._smoother.current
        prev2, prev1 = self._last_two
        prediction = max(0, 2 * prev1 - prev2)
        return prediction, self._smoother.current


PREDICTORS = {
    "last-value": LastValuePredictor,
    "moving-average": MovingAveragePredictor,
    "linear-trend": LinearTrendPredictor,
}
