"""Deco_sync: the synchronous prediction scheme (Section 4.2.2).

Per global window (from the third onward) the scheme runs prediction ->
calculation -> verification:

* *Prediction* (root, Algorithm 1): predicted size = previous actual
  size; delta = |difference of the last two| (smoothed over the last
  ``m`` windows).  One down-flow.
* *Calculation* (local, Algorithm 2): build a local slice of
  ``l-hat - Delta`` events (partially aggregated) and a local buffer of
  ``2 * Delta`` raw events; ship partial + buffer + event rate in one
  up-flow, then block.
* *Verification* (root, Algorithm 3): check Eq. 5-6 per node.  If all
  predictions hold, combine partials with the needed buffer prefix and
  emit; otherwise run the correction step (Section 4.3.1): one extra
  down-flow with the actual sizes, one extra up-flow with corrected
  partials.

The first two global windows bootstrap centrally: local nodes forward
raw events (while retaining them), and the root aggregates and learns
the first two actual local window sizes.
"""

from __future__ import annotations


from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.core.context import SchemeContext
from repro.core.local import LocalBehaviorBase
from repro.core.prediction import PREDICTORS
from repro.core.protocol import (CorrectionReport, CorrectionRequest,
                                 LocalWindowReport, Message, RawEvents,
                                 ResendRequest, WindowAssignment,
                                 trace_fields)
from repro.core.root import ReportCollector, RootBehaviorBase
from repro.core.slicing import SyncLayout, sync_layout
from repro.core.verification import sync_prediction_ok
from repro.obs import events as ev
from repro.runtime.node import RuntimeNode

if TYPE_CHECKING:
    from repro.runtime.node import Timeout

#: Number of bootstrap windows collected centrally.
BOOTSTRAP_WINDOWS = 2


class DecoSyncLocal(LocalBehaviorBase):
    """Local node of Deco_sync: slice + buffer, then block.

    "Creating a local slice is a synchronous computation between all
    nodes.  It is only created when the previous global window ends"
    (Section 4.2.2): events arriving while the node waits for the root
    are buffered, and the slice aggregation runs as a burst once the
    assignment arrives.
    """

    INGEST_PROCESS_FACTOR = 0.35

    def __init__(self, index: int, ctx: SchemeContext) -> None:
        super().__init__(index, ctx)
        self._forwarded = 0
        self._bootstrapping = True
        #: Pending assignment: (window, start, layout) or None.
        self._assignment: tuple[int, int, SyncLayout] | None = None
        #: Pending correction: (window, start, actual_size) or None.
        self._correction: tuple[int, int, int] | None = None
        #: Failure model (Section 4.3.4): the last up-flow sent, kept
        #: for timeout-driven retransmission; (window, message).
        self._last_sent: Message | None = None
        self._timeout: "Timeout | None" = None

    # -- failure model ---------------------------------------------------------

    def _arm_timeout(self, node: RuntimeNode) -> None:
        if self.ctx.retransmit_timeout_s is None:
            return
        if self._timeout is None:
            from repro.runtime.node import Timeout
            self._timeout = Timeout(node,
                                    lambda: self._retransmit(node))
        self._timeout.arm(self.ctx.retransmit_timeout_s)

    def _cancel_timeout(self) -> None:
        if self._timeout is not None:
            self._timeout.cancel()

    def _retransmit(self, node: RuntimeNode) -> None:
        """No answer from the root: re-send the last report (the root
        may have missed it, or its reply may have been dropped)."""
        if self._last_sent is None:
            return
        self.ctx.result.retransmissions += 1
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.event(ev.MSG_RETRANSMIT, node.now, node.name,
                         reason="timeout",
                         **trace_fields(self._last_sent))
            tracer.inc("retransmissions", node.name)
        self.send_up(node, self._last_sent)
        self._arm_timeout(node)

    def _send_report(self, node: RuntimeNode, msg: Message) -> None:
        self._last_sent = msg
        self.send_up(node, msg)
        self._arm_timeout(node)

    def retention_budget(self) -> int:
        if self._bootstrapping:
            # Forwarding phase: hold just enough for windows 0-1 + slack.
            return self.bootstrap_budget(BOOTSTRAP_WINDOWS)
        return super().retention_budget()

    def on_events(self, node: RuntimeNode) -> None:
        if self._bootstrapping:
            self._forward_bootstrap(node)
            return
        self._try_calculate(node)
        self._try_correct(node)

    def _forward_bootstrap(self, node: RuntimeNode) -> None:
        batch = self.buffer.get_range(self._forwarded, self.available)
        if len(batch):
            # Forward raw events but *retain* them: once prediction
            # starts, windows are aggregated from the local store.
            self.send_up(node, RawEvents(sender=node.name,
                                         window_index=-1, events=batch,
                                         start=self._forwarded))
            self._forwarded = self.available

    def handle_control(self, node: RuntimeNode, msg: Message) -> None:
        if isinstance(msg, WindowAssignment):
            self._bootstrapping = False
            self._cancel_timeout()
            if (self._last_sent is not None and self._assignment is None
                    and self._correction is None
                    and msg.window_index
                    == getattr(self._last_sent, "window_index", -2)):
                # Duplicate assignment for a window we already reported:
                # the root missed our report (failure model) — resend.
                self.ctx.result.retransmissions += 1
                tracer = self.ctx.tracer
                if tracer.enabled:
                    tracer.event(ev.MSG_RETRANSMIT, node.now,
                                 node.name, reason="duplicate_assignment",
                                 **trace_fields(self._last_sent))
                    tracer.inc("retransmissions", node.name)
                self.send_up(node, self._last_sent)
                self._arm_timeout(node)
                return
            layout = sync_layout(msg.predicted_size, msg.delta)
            self._assignment = (msg.window_index, msg.start_position,
                                layout)
            if msg.release_before >= 0:
                self.buffer.release_before(msg.release_before)
            self.apply_watermark(msg.watermark)
            self._try_calculate(node)
        elif isinstance(msg, CorrectionRequest):
            self._assignment = None  # the prediction was wrong
            self._cancel_timeout()
            self._correction = (msg.window_index, msg.start_position,
                                msg.actual_size)
            self._try_correct(node)
        elif isinstance(msg, ResendRequest):
            # The root detected a gap in the bootstrap forwarding.
            if self._bootstrapping:
                self._forwarded = min(self._forwarded,
                                      msg.from_position)
                self._forward_bootstrap(node)
        else:  # pragma: no cover - defensive
            raise TypeError(f"Deco_sync local got {type(msg).__name__}")

    def _try_calculate(self, node: RuntimeNode) -> None:
        """Algorithm 2: emit partial + buffer once enough events exist."""
        if self._assignment is None:
            return
        window, start, layout = self._assignment
        if self.available < start + layout.total:
            return
        self._assignment = None
        slice_end = start + layout.slice_size
        buffer_events = self.buffer.get_range(
            slice_end, slice_end + layout.buffer_size)
        first_ts = (self.buffer.get_range(start, start + 1).first_ts
                    if layout.total else -1)

        def send(partial: Any) -> None:
            self._send_report(node, LocalWindowReport(
                sender=node.name, window_index=window, epoch=0,
                partial=partial, slice_count=layout.slice_size,
                event_rate=self.take_rate(), buffer=buffer_events,
                spec_start=start, slice_start=start, first_ts=first_ts))
            # Now blocked until the next assignment (or a correction).

        self.aggregate_then(node, start, slice_end, send)

    def _try_correct(self, node: RuntimeNode) -> None:
        """Correction step: recompute with the actual window size."""
        if self._correction is None:
            return
        window, start, actual = self._correction
        if self.available < start + actual:
            return  # predicted far too small; wait for the events
        self._correction = None
        end = start + actual
        # Recomputing the window span is real work the local repeats.
        self.ctx.result.recomputed_events += actual
        last_event = (self.buffer.get_range(end - 1, end) if actual > 0
                      else self.buffer.get_range(end, end))

        def send(partial: Any) -> None:
            self._send_report(node, CorrectionReport(
                sender=node.name, window_index=window, epoch=0,
                partial=partial, count=actual, last_event=last_event))

        self.aggregate_then(node, start, end, send)


class DecoSyncRoot(RootBehaviorBase):
    """Root of Deco_sync: bootstrap, predict, verify, correct."""

    def __init__(self, ctx: SchemeContext) -> None:
        super().__init__(ctx)
        self.raw = self.new_raw_buffers()
        self.reports = ReportCollector(self.n_nodes)
        self.corrections = ReportCollector(self.n_nodes)
        predictor_cls = PREDICTORS[ctx.query.predictor]
        self.predictors = [
            predictor_cls(m=ctx.query.delta_m,
                          min_delta=ctx.query.min_delta)
            for _ in range(self.n_nodes)]
        #: Prediction sent per window: {a: (start, predicted, delta)}.
        self.assigned: dict[int, dict[int, tuple[int, int, int]]] = {}
        self._correcting: int | None = None
        #: Once predictions start, late bootstrap raw events are merely
        #: discarded (cheap), not aggregated.
        self._bootstrap_done = False
        #: Failure model: re-broadcast hook while awaiting reports.
        self._timeout: "Timeout | None" = None
        self._rebroadcast: Callable[[], None] | None = None
        self._timeout_node: RuntimeNode | None = None

    # -- failure model ----------------------------------------------------------

    def _arm_timeout(self, node: RuntimeNode,
                     rebroadcast: Callable[[], None]) -> None:
        """Await reports; re-broadcast the last down-flow on timeout
        ("when the root does not receive messages from one of the local
        nodes... the root node then starts the correction step" — here
        realized as a retransmission, which also covers dropped
        down-flows)."""
        self._rebroadcast = rebroadcast
        self._timeout_node = node
        if self.ctx.retransmit_timeout_s is None:
            return
        if self._timeout is None:
            from repro.runtime.node import Timeout
            self._timeout = Timeout(node, self._fire_timeout)
        self._timeout.arm(self.ctx.retransmit_timeout_s)

    def _cancel_timeout(self) -> None:
        if self._timeout is not None:
            self._timeout.cancel()

    def _fire_timeout(self) -> None:
        if self._rebroadcast is not None:
            self.result.retransmissions += 1
            tracer = self.ctx.tracer
            if tracer.enabled:
                node = self._timeout_node
                tracer.event(ev.MSG_RETRANSMIT, node.now, node.name,
                             reason="timeout", msg="down_flow")
                tracer.inc("retransmissions", node.name)
            self._rebroadcast()
            if self._timeout is not None:
                self._timeout.arm(self.ctx.retransmit_timeout_s)

    # -- dispatch ------------------------------------------------------------

    def service_time(self, node: RuntimeNode, msg: Message) -> float:
        if isinstance(msg, RawEvents) and self._bootstrap_done:
            # Stale bootstrap forwardings after the switch to
            # decentralized mode: dequeue and drop, no aggregation.
            return (node.profile.message_overhead_s
                    + 0.05 * len(msg.events)
                    * node.profile.per_event_process_s())
        return super().service_time(node, msg)

    def handle(self, node: RuntimeNode, msg: Message) -> None:
        if isinstance(msg, RawEvents):
            if self._bootstrap_done:
                return  # late bootstrap forwardings; dropped
            a = self.node_index(msg.sender)
            if not self.ingest_positioned_raw(node, msg, self.raw[a]):
                return
            node.account_events(len(msg.events))
            self._try_emit_bootstrap(node)
        elif isinstance(msg, LocalWindowReport):
            self.reports.add(msg.window_index,
                             self.node_index(msg.sender), msg)
            self._try_verify(node)
        elif isinstance(msg, CorrectionReport):
            self.corrections.add(msg.window_index,
                                 self.node_index(msg.sender), msg)
            self._try_finish_correction(node)
        else:  # pragma: no cover - defensive
            raise TypeError(f"Deco_sync root got {type(msg).__name__}")

    # -- bootstrap -----------------------------------------------------------

    def _try_emit_bootstrap(self, node: RuntimeNode) -> None:
        while (self.next_emit < min(BOOTSTRAP_WINDOWS,
                                    self.ctx.n_windows)):
            g = self.next_emit
            spans = self.actual_spans(g)
            if not all(self.raw[a].end >= end
                       for a, (_, end) in spans.items()):
                return
            partial = self.fn.identity()
            for a, (start, end) in spans.items():
                partial = self.fn.combine(
                    partial, self.raw[a].lift_range(start, end))
                self.predictors[a].observe(end - start)
            last = g == BOOTSTRAP_WINDOWS - 1 or \
                g == self.ctx.n_windows - 1
            self.emit(node, g, self.fn.lower(partial), spans,
                      up_flows=1, down_flows=0,
                      after=(lambda: self._send_prediction(node))
                      if last else None)

    # -- prediction step ---------------------------------------------------------

    def _send_prediction(self, node: RuntimeNode) -> None:
        """Algorithm 1: assign predicted sizes + deltas for next_emit."""
        g = self.next_emit
        self._bootstrap_done = True
        if g >= self.ctx.n_windows:
            return
        assignment: dict[int, tuple[int, int, int]] = {}
        watermark = self.watermark.current
        for a in range(self.n_nodes):
            predicted, delta = self.predictors[a].predict()
            start = int(self.workload.bounds[g, a])
            assignment[a] = (start, predicted, delta)
        self.assigned[g] = assignment
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.event(ev.STATE, node.now, node.name,
                         transition="predict", window=g)

        def broadcast() -> None:
            self.broadcast(node, lambda a: WindowAssignment(
                sender="root", window_index=g, epoch=0,
                predicted_size=assignment[a][1],
                delta=assignment[a][2],
                start_position=assignment[a][0],
                release_before=assignment[a][0], watermark=watermark))

        broadcast()
        self._arm_timeout(node, broadcast)

    # -- verification step ----------------------------------------------------------

    def _try_verify(self, node: RuntimeNode) -> None:
        """Algorithm 3: verify Eq. 5-6, emit or start the correction."""
        g = self.next_emit
        if (g >= self.ctx.n_windows or self._correcting is not None
                or not self.reports.complete(g)):
            return
        self._cancel_timeout()
        reports = self.reports.pop(g)
        assignment = self.assigned.pop(g)
        ok = all(
            sync_prediction_ok(self.workload.actual_size(g, a),
                               assignment[a][1], assignment[a][2])
            for a in range(self.n_nodes))
        if not ok:
            self.result.prediction_errors += 1
            tracer = self.ctx.tracer
            if tracer.enabled:
                tracer.event(ev.STATE, node.now, node.name,
                             transition="verify_failed", window=g)
            self._start_correction(node, g)
            return
        partial = self.fn.identity()
        for a in sorted(reports):
            report = reports[a]
            start, _, _ = assignment[a]
            slice_end = start + report.slice_count
            _, actual_end = self.workload.span(g, a)
            partial = self.fn.combine(partial, report.partial)
            needed = report.buffer.take(actual_end - slice_end)
            if len(needed):
                partial = self.fn.combine(partial, self.fn.lift(needed))
            self.predictors[a].observe(actual_end - start)
        self.emit(node, g, self.fn.lower(partial), self.actual_spans(g),
                  up_flows=1, down_flows=1,
                  after=lambda: self._send_prediction(node))

    # -- correction step -------------------------------------------------------------

    def _start_correction(self, node: RuntimeNode, window: int) -> None:
        """Send actual sizes; await corrected partials (Section 4.3.1)."""
        self._correcting = window
        spans = self.actual_spans(window)
        watermark = self.watermark.current
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.event(ev.STATE, node.now, node.name,
                         transition="correction_start", window=window)
            tracer.inc("corrections", node.name)

        def broadcast() -> None:
            self.broadcast(node, lambda a: CorrectionRequest(
                sender="root", window_index=window, epoch=0,
                actual_size=spans[a][1] - spans[a][0],
                start_position=spans[a][0], watermark=watermark))

        broadcast()
        self._arm_timeout(node, broadcast)

    def _try_finish_correction(self, node: RuntimeNode) -> None:
        g = self._correcting
        if g is None or not self.corrections.complete(g):
            return
        self._cancel_timeout()
        self._correcting = None
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.event(ev.STATE, node.now, node.name,
                         transition="correction_done", window=g)
        reports = self.corrections.pop(g)
        partial = self.fn.combine_all(
            r.partial for _, r in sorted(reports.items()))
        for a in range(self.n_nodes):
            self.predictors[a].observe(self.workload.actual_size(g, a))
        self.emit(node, g, self.fn.lower(partial), self.actual_spans(g),
                  corrected=True, up_flows=2, down_flows=2,
                  after=lambda: self._send_prediction(node))
