"""Deco_monlocal: the root-less monitoring variant (Section 5.1).

The microbenchmark modifies Deco_mon so that coordination happens among
the local nodes themselves: "in the initialization step, local nodes
communicate with each other to exchange event rates.  The verification
steps are moved to each local node.  Only if a local node collects all
event rates from other nodes, it starts to calculate window sizes.  The
calculation step is the same as Deco_mon.  The root node then has to
inform local nodes to start the next window."  Three flows per window
remain, but the peer exchange costs O(n^2) messages and every node
synchronizes with every other — which is why its latency (10.24 ms at
32 nodes) is ~20x Deco_mon's (0.526 ms).

Local window sizes are computed from the exchanged rates via the
Section 4.1 proportional split, so (unlike the oracle-backed schemes)
the window boundaries are rate-derived; the paper evaluates this
variant on latency only.
"""

from __future__ import annotations


from typing import Any

from repro.core.context import SchemeContext
from repro.core.local import LocalBehaviorBase
from repro.core.protocol import (LocalWindowReport, Message, RateReport,
                                 StartWindow)
from repro.core.root import ReportCollector, RootBehaviorBase
from repro.core.slicing import mon_local_sizes
from repro.runtime.node import RuntimeNode
from repro.runtime.api import local_name


class DecoMonLocalPeerLocal(LocalBehaviorBase):
    """Local node: exchange rates with peers, size own window, report."""

    #: Blocking like Deco_mon: no window work until all peer rates are
    #: in.
    INGEST_PROCESS_FACTOR = 0.35

    def __init__(self, index: int, ctx: SchemeContext) -> None:
        super().__init__(index, ctx)
        self._window = 0
        self._position = 0
        self._started = False
        #: Peer rates for the current window, own rate included.
        self._rates: dict[int, float] = {}
        self._pending_size: int | None = None

    # -- peer exchange (initialization step) -----------------------------------

    def _broadcast_rate(self, node: RuntimeNode) -> None:
        rate = self.take_rate() or 1.0
        self._rates[self.index] = rate
        report = RateReport(sender=node.name, window_index=self._window,
                            event_rate=rate, events_seen=0)
        for a in range(self.ctx.n_nodes):
            if a != self.index:
                node.send(local_name(a), report)
        self._maybe_size(node)

    def on_events(self, node: RuntimeNode) -> None:
        if not self._started:
            self._started = True
            self._broadcast_rate(node)
        self._try_complete(node)

    def handle_control(self, node: RuntimeNode, msg: Message) -> None:
        if isinstance(msg, RateReport):
            if msg.window_index != self._window:
                return  # stale exchange from a previous window
            self._rates[self.node_index(msg.sender)] = msg.event_rate
            self._maybe_size(node)
        elif isinstance(msg, StartWindow):
            # The root's confirmation: begin the next window's exchange.
            self._window = msg.window_index
            self._rates = {}
            self._broadcast_rate(node)

    def node_index(self, sender: str) -> int:
        return int(sender.rsplit("-", 1)[1])

    # -- verification moved to the local node -----------------------------------

    def _maybe_size(self, node: RuntimeNode) -> None:
        if len(self._rates) < self.ctx.n_nodes:
            return
        rates = [self._rates[a] for a in range(self.ctx.n_nodes)]
        sizes = mon_local_sizes(rates, self.ctx.window_size)
        self._pending_size = sizes[self.index]
        self._try_complete(node)

    # -- calculation step ----------------------------------------------------------

    def _try_complete(self, node: RuntimeNode) -> None:
        if self._pending_size is None:
            return
        start, size = self._position, self._pending_size
        if self.available < start + size:
            return
        self._pending_size = None
        window = self._window

        def send(partial: Any) -> None:
            self.send_up(node, LocalWindowReport(
                sender=node.name, window_index=window, epoch=0,
                partial=partial, slice_count=size,
                event_rate=self._last_rate, spec_start=start,
                slice_start=start))

        self.aggregate_then(node, start, start + size, send)
        self._position = start + size
        self.buffer.release_before(self._position)


class DecoMonLocalPeerRoot(RootBehaviorBase):
    """Root: combine partials and signal the next window."""

    def __init__(self, ctx: SchemeContext) -> None:
        super().__init__(ctx)
        self.reports = ReportCollector(self.n_nodes)

    def handle(self, node: RuntimeNode, msg: Message) -> None:
        if not isinstance(msg, LocalWindowReport):  # pragma: no cover
            raise TypeError(
                f"Deco_monlocal root got {type(msg).__name__}")
        self.reports.add(msg.window_index, self.node_index(msg.sender),
                         msg)
        self._maybe_emit(node)

    def _maybe_emit(self, node: RuntimeNode) -> None:
        g = self.next_emit
        if g >= self.ctx.n_windows or not self.reports.complete(g):
            return
        reports = self.reports.pop(g)
        partial = self.fn.combine_all(
            r.partial for _, r in sorted(reports.items()))
        # Spans are rate-derived (not oracle boundaries): record what the
        # locals actually aggregated.
        spans = {a: (r.spec_start, r.spec_start + r.slice_count)
                 for a, r in reports.items()}
        next_window = g + 1
        self.emit(node, g, self.fn.lower(partial), spans,
                  up_flows=2, down_flows=1,
                  after=lambda: self.broadcast(
                      node, lambda a: StartWindow(
                          sender="root", window_index=next_window,
                          epoch=0,
                          watermark=self.watermark.current)))
