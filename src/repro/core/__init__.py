"""Deco core: schemes, prediction, verification, and the runner."""

from repro.core.context import SchemeContext
from repro.core.deco_async import DecoAsyncLocal, DecoAsyncRoot
from repro.core.deco_mon import DecoMonLocal, DecoMonRoot
from repro.core.deco_monlocal import (DecoMonLocalPeerLocal,
                                      DecoMonLocalPeerRoot)
from repro.core.deco_sync import DecoSyncLocal, DecoSyncRoot
from repro.core.prediction import (DeltaSmoother, LastValuePredictor,
                                   LinearTrendPredictor,
                                   MovingAveragePredictor, PREDICTORS)
from repro.core.query import Query, tumbling_count_query
from repro.core.records import RunResult, WindowOutcome
from repro.core.runner import (RunConfig, SchemeSpec, available_schemes,
                               get_scheme, register_scheme, run_scheme)
from repro.core.slicing import (async_layout, mon_local_sizes,
                                sync_layout)
from repro.core.verification import (async_global_check, async_node_ok,
                                     sync_all_ok, sync_prediction_ok)
from repro.core.workload import Workload, build_workload, \
    generate_workload

DECO_MON = register_scheme(SchemeSpec(
    name="deco_mon", root_cls=DecoMonRoot, local_cls=DecoMonLocal))

DECO_SYNC = register_scheme(SchemeSpec(
    name="deco_sync", root_cls=DecoSyncRoot, local_cls=DecoSyncLocal))

DECO_ASYNC = register_scheme(SchemeSpec(
    name="deco_async", root_cls=DecoAsyncRoot, local_cls=DecoAsyncLocal))

DECO_MONLOCAL = register_scheme(SchemeSpec(
    name="deco_monlocal", root_cls=DecoMonLocalPeerRoot,
    local_cls=DecoMonLocalPeerLocal, needs_peer_mesh=True))

__all__ = [
    "Query",
    "tumbling_count_query",
    "RunConfig",
    "run_scheme",
    "RunResult",
    "WindowOutcome",
    "Workload",
    "build_workload",
    "generate_workload",
    "SchemeContext",
    "SchemeSpec",
    "register_scheme",
    "get_scheme",
    "available_schemes",
    "DecoMonLocal",
    "DecoMonRoot",
    "DecoSyncLocal",
    "DecoSyncRoot",
    "PREDICTORS",
    "LastValuePredictor",
    "MovingAveragePredictor",
    "LinearTrendPredictor",
    "DeltaSmoother",
    "sync_layout",
    "async_layout",
    "mon_local_sizes",
    "sync_prediction_ok",
    "sync_all_ok",
    "async_global_check",
    "async_node_ok",
]
