"""Query specification for the Deco pipeline."""

from __future__ import annotations

import hashlib

from dataclasses import astuple, dataclass, field

from typing import Any

from repro.aggregates.base import AggregateFunction
from repro.aggregates.registry import get_aggregate
from repro.errors import ConfigurationError
from repro.windows.base import (SlidingCountWindow, TumblingCountWindow,
                                WindowSpec)


@dataclass(eq=False)
class Query:
    """A count-based window aggregation query.

    Args:
        window: The window specification.  Deco's decentralized schemes
            target tumbling count windows; other specs are served by the
            substrate operators.
        aggregate: An :class:`AggregateFunction` or a registry name
            (e.g. ``"sum"``).
        delta_m: The paper's ``m`` parameter — how many past deltas are
            averaged; controls how aggressively Deco adapts
            (Section 4.2.2).
        min_delta: Optional floor on the smoothed delta.
        predictor: Prediction strategy name (``last-value`` is the
            paper's; others exist for ablations).
    """

    window: WindowSpec
    aggregate: str | AggregateFunction = "sum"
    delta_m: int = 1
    min_delta: int = 0
    predictor: str = "last-value"

    def __post_init__(self) -> None:
        self.window.validate()
        if isinstance(self.aggregate, str):
            self.aggregate = get_aggregate(self.aggregate)
        if self.delta_m < 1:
            raise ConfigurationError(
                f"delta_m must be >= 1, got {self.delta_m}")
        if self.min_delta < 0:
            raise ConfigurationError(
                f"min_delta must be >= 0, got {self.min_delta}")

    # -- identity ----------------------------------------------------------

    def canonical(self) -> tuple[Any, ...]:
        """Content tuple identifying this query.

        ``__post_init__`` resolves ``aggregate`` from a registry name to
        an instance, so two specs built from ``"sum"`` and
        ``get_aggregate("sum")`` hold different objects; the canonical
        form maps both back to the registry name so equal specs compare,
        hash, and dedup identically.
        """
        agg = self.aggregate
        agg_name = agg.name if isinstance(agg, AggregateFunction) else agg
        return (type(self.window).__name__, astuple(self.window),
                agg_name, self.delta_m, self.min_delta, self.predictor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    @property
    def query_key(self) -> str:
        """Stable content-derived key (registry dedup, trace labels)."""
        payload = repr(self.canonical()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:12]

    @property
    def label(self) -> str:
        """Human-readable spec label, e.g. ``sum:1000`` or
        ``avg:1000:250`` — the same shape :func:`parse_query_spec`
        accepts for count windows."""
        agg = self.aggregate
        agg_name = agg.name if isinstance(agg, AggregateFunction) else agg
        win = self.window
        if isinstance(win, SlidingCountWindow):
            return f"{agg_name}:{win.length}:{win.step}"
        if isinstance(win, TumblingCountWindow):
            return f"{agg_name}:{win.length}"
        return f"{agg_name}:{type(win).__name__}"

    @property
    def window_size(self) -> int:
        """The global count window size ``l_global``."""
        if not isinstance(self.window, TumblingCountWindow):
            raise ConfigurationError(
                "decentralized schemes require a tumbling count window; "
                f"got {type(self.window).__name__}")
        return self.window.length

    @property
    def decomposable(self) -> bool:
        """Whether partial aggregation on local nodes is possible.

        Non-decomposable (holistic) functions force centralized
        aggregation (paper footnote 2).
        """
        return self.aggregate.is_decomposable


def tumbling_count_query(
        window_size: int, aggregate: str | AggregateFunction = "sum",
        **kwargs: Any) -> Query:
    """Convenience constructor for the evaluation's standard query."""
    return Query(window=TumblingCountWindow(window_size),
                 aggregate=aggregate, **kwargs)


def parse_query_spec(spec: str) -> Query:
    """Parse an ``agg:length[:step]`` spec into a count-window query.

    ``step == length`` (or omitted) yields a tumbling window; a smaller
    step yields a sliding window.  This is the string form accepted by
    ``RunConfig.queries`` and the CLI ``--queries`` flag, and emitted by
    :attr:`Query.label`.
    """
    parts = spec.strip().split(":")
    if len(parts) not in (2, 3) or not parts[0]:
        raise ConfigurationError(
            f"query spec must be 'agg:length[:step]', got {spec!r}")
    try:
        length = int(parts[1])
        step = int(parts[2]) if len(parts) == 3 else length
    except ValueError as exc:
        raise ConfigurationError(
            f"query spec has non-integer window in {spec!r}") from exc
    window: WindowSpec = (TumblingCountWindow(length) if step == length
                          else SlidingCountWindow(length, step))
    return Query(window=window, aggregate=parts[0])
