"""Query specification for the Deco pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

from repro.aggregates.base import AggregateFunction
from repro.aggregates.registry import get_aggregate
from repro.errors import ConfigurationError
from repro.windows.base import TumblingCountWindow, WindowSpec


@dataclass
class Query:
    """A count-based window aggregation query.

    Args:
        window: The window specification.  Deco's decentralized schemes
            target tumbling count windows; other specs are served by the
            substrate operators.
        aggregate: An :class:`AggregateFunction` or a registry name
            (e.g. ``"sum"``).
        delta_m: The paper's ``m`` parameter — how many past deltas are
            averaged; controls how aggressively Deco adapts
            (Section 4.2.2).
        min_delta: Optional floor on the smoothed delta.
        predictor: Prediction strategy name (``last-value`` is the
            paper's; others exist for ablations).
    """

    window: WindowSpec
    aggregate: str | AggregateFunction = "sum"
    delta_m: int = 1
    min_delta: int = 0
    predictor: str = "last-value"

    def __post_init__(self) -> None:
        self.window.validate()
        if isinstance(self.aggregate, str):
            self.aggregate = get_aggregate(self.aggregate)
        if self.delta_m < 1:
            raise ConfigurationError(
                f"delta_m must be >= 1, got {self.delta_m}")
        if self.min_delta < 0:
            raise ConfigurationError(
                f"min_delta must be >= 0, got {self.min_delta}")

    @property
    def window_size(self) -> int:
        """The global count window size ``l_global``."""
        if not isinstance(self.window, TumblingCountWindow):
            raise ConfigurationError(
                "decentralized schemes require a tumbling count window; "
                f"got {type(self.window).__name__}")
        return self.window.length

    @property
    def decomposable(self) -> bool:
        """Whether partial aggregation on local nodes is possible.

        Non-decomposable (holistic) functions force centralized
        aggregation (paper footnote 2).
        """
        return self.aggregate.is_decomposable


def tumbling_count_query(
        window_size: int, aggregate: str | AggregateFunction = "sum",
        **kwargs: Any) -> Query:
    """Convenience constructor for the evaluation's standard query."""
    return Query(window=TumblingCountWindow(window_size),
                 aggregate=aggregate, **kwargs)
