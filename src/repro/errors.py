"""Exception hierarchy for the Deco reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A query, topology, or experiment was configured inconsistently."""


class StreamError(ReproError):
    """A data stream violated its contract (e.g. non-monotonic timestamps)."""


class WindowError(ReproError):
    """A window operation was used outside its valid state."""


class AggregationError(ReproError):
    """An aggregation function was applied to an unsupported input."""


class ProtocolError(ReproError):
    """A Deco protocol message arrived in an unexpected state."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ServeError(ReproError):
    """The serve runtime (real node processes over TCP) failed: a node
    process died, a connection could not be established, or the ops
    protocol was violated."""


class VerificationFailed(ReproError):
    """Internal invariant check failed; indicates a bug, not a prediction error."""
