"""High-level public API of the Deco reproduction.

Typical use::

    from repro.api import run, compare

    summary = run("deco_async", n_nodes=8, window_size=100_000,
                  n_windows=20, rate_change=0.01)
    print(summary.throughput, summary.total_bytes, summary.correctness)

    results = compare(["central", "scotty", "deco_async"], n_nodes=8,
                      window_size=100_000, n_windows=20)

``mode="throughput"`` (default) runs saturated — input always available,
backpressured at each node — and reports sustainable throughput.
``mode="latency"`` paces input at event time and reports steady-state
window latency.

Sweeps parallelize: :func:`compare` and :func:`compare_grid` fan their
independent runs out over worker processes via
:class:`repro.sweep.SweepExecutor` (``jobs=`` argument, ``REPRO_JOBS``
environment variable, default ``os.cpu_count()``; ``jobs=1`` is the
in-process serial path with bit-identical results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.core.records import RunResult
from repro.core.runner import RunConfig, run_scheme
from repro.core.workload import Workload, generate_workload
from repro.errors import ConfigurationError
from repro.metrics.correctness import correctness as _correctness
from repro.metrics.latency import percentile_latency
from repro.metrics.throughput import sustainable_throughput
from repro.obs.tracer import RunTracer, TraceFlag, resolve_tracer
from repro.sweep import SweepExecutor

# Ensure every built-in scheme is registered on import.
import repro.core  # noqa: F401  (registers deco_* schemes)
import repro.baselines  # noqa: F401  (registers baselines)

#: All schemes the evaluation compares, in the paper's order.
ALL_SCHEMES = ("central", "scotty", "disco", "approx", "deco_mon",
               "deco_sync", "deco_async")
DECO_SCHEMES = ("deco_mon", "deco_sync", "deco_async")


@dataclass
class RunSummary:
    """One scheme run with its headline metrics."""

    scheme: str
    mode: str
    result: RunResult = field(repr=False)
    workload: Workload = field(repr=False)
    #: Sustainable throughput in events/s (saturated runs).
    throughput: float | None = None
    #: Median steady-state window latency in seconds (paced runs).
    #: The median matches the paper's per-event processing-time metric
    #: more closely than the mean: a speculative window that waits for
    #: the next front buffer delays one result, not the typical event.
    latency_s: float | None = None
    total_bytes: int = 0
    correctness: float = 0.0
    correction_steps: int = 0
    #: The run's :class:`~repro.obs.tracer.RunTracer` when tracing was
    #: requested (``trace=True``); ``None`` otherwise.
    trace: RunTracer | None = field(default=None, repr=False)
    #: Per-standing-query accounts (qid -> JSON account with result
    #: fingerprint and cost counters) when the run carried ``queries``;
    #: empty otherwise.  See :mod:`repro.core.multiquery`.
    queries: dict[str, dict[str, Any]] = field(default_factory=dict,
                                               repr=False)

    def __str__(self) -> str:
        parts = [f"{self.scheme}"]
        if self.throughput is not None:
            parts.append(f"throughput={self.throughput:,.0f} ev/s")
        if self.latency_s is not None:
            parts.append(f"latency={self.latency_s * 1e3:.3f} ms")
        parts.append(f"bytes={self.total_bytes:,}")
        parts.append(f"correctness={self.correctness:.4f}")
        parts.append(f"corrections={self.correction_steps}")
        return "  ".join(parts)


def _make_config(scheme: str, *, mode: str = "throughput", seed: int = 0,
                 **config_kwargs) -> RunConfig:
    """Build the :class:`RunConfig` of one scheme run (validates mode)."""
    if mode not in ("throughput", "latency"):
        raise ConfigurationError(
            f"mode must be 'throughput' or 'latency', got {mode!r}")
    return RunConfig(scheme=scheme, seed=seed,
                     saturated=(mode == "throughput"), **config_kwargs)


def _summarize(config: RunConfig, mode: str, result: RunResult,
               workload: Workload) -> RunSummary:
    """Package one finished run into a :class:`RunSummary`."""
    summary = RunSummary(
        scheme=config.scheme, mode=mode, result=result, workload=workload,
        total_bytes=result.total_bytes,
        correctness=_correctness(result, workload),
        correction_steps=result.correction_steps,
        queries=dict(result.queries))
    if mode == "throughput":
        summary.throughput = sustainable_throughput(result)
    else:
        summary.latency_s = percentile_latency(
            result, workload, config.resolved_batch_size(), 50.0)
    return summary


def run(scheme: str, *, n_nodes: int = 2, window_size: int = 10_000,
        n_windows: int = 10, rate_per_node: float = 100_000.0,
        rate_change: float = 0.01, aggregate: str = "sum",
        mode: str = "throughput", seed: int = 0,
        workload: Workload | None = None,
        trace: TraceFlag = False,
        **config_kwargs) -> RunSummary:
    """Run one scheme and summarize its metrics.

    Args:
        scheme: A registered scheme name (see :data:`ALL_SCHEMES`).
        n_nodes: Local node count.
        window_size: Global count window size ``l_global``.
        n_windows: Global windows to process.
        rate_per_node: Mean event rate per local node (events/s).
        rate_change: The paper's rate-change parameter (0.01 = 1%).
        aggregate: Aggregation function name.
        mode: ``"throughput"`` (saturated) or ``"latency"`` (paced).
        seed: Workload RNG seed.
        workload: Reuse a pre-generated workload (for fair comparisons).
        trace: Record a structured trace (see :mod:`repro.obs`); the
            tracer lands on :attr:`RunSummary.trace`, the metrics are
            unchanged.  Also accepts an existing
            :class:`~repro.obs.tracer.RunTracer` to collect into.
        **config_kwargs: Extra :class:`RunConfig` fields (profiles,
            bandwidth, delta_m, ...).  Notably ``queries``: a tuple of
            standing-query specs (``"agg:length[:step]"``, e.g.
            ``("sum:1000", "avg:700:350")``) admitted on every local
            stream and served by the shared multi-query engine; the
            per-query accounts land on :attr:`RunSummary.queries`.  A
            single query is just the one-element tuple of the same
            path.
    """
    config = _make_config(
        scheme, mode=mode, seed=seed, n_nodes=n_nodes,
        window_size=window_size, n_windows=n_windows,
        rate_per_node=rate_per_node, rate_change=rate_change,
        aggregate=aggregate, **config_kwargs)
    tracer = resolve_tracer(trace)
    result, used_workload = run_scheme(config, workload, tracer)
    summary = _summarize(config, mode, result, used_workload)
    summary.trace = tracer
    return summary


def compare(schemes: Sequence[str], *, seed: int = 0,
            jobs: int | None = None,
            **kwargs) -> dict[str, RunSummary]:
    """Run several schemes over the *same* workload.

    Returns a dict keyed by scheme name, in input order.  The runs are
    independent simulations and fan out over ``jobs`` worker processes
    (see :mod:`repro.sweep`); ``jobs=1`` runs them serially in-process
    with bit-identical results.
    """
    if not schemes:
        raise ConfigurationError("no schemes given")
    return compare_grid(schemes, [{}], seed=seed, jobs=jobs, **kwargs)[0]


def compare_grid(schemes: Sequence[str],
                 points: Sequence[Mapping],
                 *, seed: int = 0, mode: str = "throughput",
                 jobs: int | None = None,
                 **common) -> list[dict[str, RunSummary]]:
    """Run a sweep: every scheme at every grid point, in parallel.

    ``points`` is a sequence of per-point :class:`RunConfig` overrides
    (e.g. ``[{"n_nodes": 2}, {"n_nodes": 4}]``) merged over the shared
    ``common`` kwargs.  All ``len(schemes) * len(points)`` runs are
    independent and execute on a single :class:`SweepExecutor`, so the
    whole grid — not just one point — parallelizes, and each distinct
    workload is generated once and shared across the scheme runs that
    consume it.

    Returns one ``{scheme: RunSummary}`` dict per point, in point order.
    """
    if not schemes:
        raise ConfigurationError("no schemes given")
    points = [dict(p) for p in points]
    if not points:
        return []
    configs: list[RunConfig] = []
    modes: list[str] = []
    for point in points:
        merged = {**common, **point}
        point_mode = merged.pop("mode", mode)
        for scheme in schemes:
            configs.append(_make_config(scheme, mode=point_mode,
                                        seed=seed, **merged))
            modes.append(point_mode)
    pairs = SweepExecutor(jobs=jobs).run_with_workloads(configs)
    out: list[dict[str, RunSummary]] = []
    it = zip(configs, modes, pairs, strict=True)
    for _point in points:
        summaries: dict[str, RunSummary] = {}
        for scheme in schemes:
            config, run_mode, (result, workload) = next(it)
            summaries[scheme] = _summarize(config, run_mode, result,
                                           workload)
        out.append(summaries)
    return out
