"""Tracers: the recording half of the observability layer.

Two implementations share one duck-typed interface:

* :data:`NULL_TRACER` — the process-wide no-op default.  Every hook in
  the simulator guards itself with ``if tracer.enabled:``, so an
  untraced run pays exactly one attribute load + branch per *message*
  (never per event) and allocates nothing.  Untraced results are
  bit-identical to traced ones because tracing only observes — it never
  schedules, draws randomness, or mutates simulation state.
* :class:`RunTracer` — records :class:`~repro.obs.events.TraceEvent`
  objects into a flat list and accumulates named counters/gauges scoped
  per node or per link.  One instance covers one run.

The counter registry is deliberately primitive — ``(name, scope)`` keys
in a dict — because everything richer (per-link tables, per-node rates,
Chrome counter tracks) is derived at export time, off the hot path.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.obs.events import TraceEvent

#: Scope used for run-global counters.
GLOBAL_SCOPE = ""

class NullTracer:
    """The zero-overhead default tracer: records nothing.

    Hooks must check :attr:`enabled` before building event payloads;
    the methods exist (as no-ops) so unguarded calls stay safe.
    """

    __slots__ = ()
    enabled = False

    def event(self, kind: str, time: float, node: str,
              dur: float = 0.0, **data: Any) -> None:
        """No-op."""

    def inc(self, name: str, scope: str = GLOBAL_SCOPE,
            n: float = 1) -> None:
        """No-op."""

    def gauge(self, name: str, scope: str, value: float) -> None:
        """No-op."""


#: The shared no-op tracer every simulator starts with.
NULL_TRACER = NullTracer()


class RunTracer:
    """Records one run's events, counters, and gauges in memory.

    Attributes:
        events: Recorded events in simulation-execution order (which is
            nondecreasing in record time, though ``cpu`` spans may start
            after later-recorded instants — exporters sort).
        counters: ``(name, scope) -> value`` accumulators.
        gauges: ``(name, scope) -> (last, max)`` samples.
    """

    __slots__ = ("events", "counters", "gauges", "meta")
    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.counters: dict[tuple[str, str], float] = {}
        self.gauges: dict[tuple[str, str], tuple[float, float]] = {}
        #: Run identification filled by the runner (scheme, seed, ...).
        self.meta: dict[str, Any] = {}

    # -- recording ---------------------------------------------------------

    def event(self, kind: str, time: float, node: str,
              dur: float = 0.0, **data: Any) -> None:
        """Record one event (see :mod:`repro.obs.events` for kinds)."""
        self.events.append(TraceEvent(kind, time, node, dur, data))

    def inc(self, name: str, scope: str = GLOBAL_SCOPE,
            n: float = 1) -> None:
        """Add ``n`` to the ``(name, scope)`` counter."""
        key = (name, scope)
        self.counters[key] = self.counters.get(key, 0) + n

    def gauge(self, name: str, scope: str, value: float) -> None:
        """Sample a gauge: keeps the last and the max value."""
        key = (name, scope)
        _, high = self.gauges.get(key, (value, value))
        self.gauges[key] = (value, max(high, value))

    # -- inspection --------------------------------------------------------

    def counts_by_kind(self) -> dict[str, int]:
        """Event totals per kind, for summaries and assertions."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def counter(self, name: str, scope: str = GLOBAL_SCOPE) -> float:
        """One counter's value (0 when never incremented)."""
        return self.counters.get((name, scope), 0)

    def counters_named(self, name: str) -> dict[str, float]:
        """All scopes of one counter name, as ``scope -> value``."""
        return {scope: value for (n, scope), value
                in self.counters.items() if n == name}

    def nodes(self) -> list[str]:
        """Node names that recorded at least one event (sorted, root
        first)."""
        names = {event.node for event in self.events}
        return sorted(names, key=lambda n: (n != "root", n))

    def events_of(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in record order."""
        return [event for event in self.events if event.kind == kind]


#: The values a user-facing ``trace`` argument may take: the two
#: literal booleans, ``None`` (same as ``False``), or an existing
#: :class:`RunTracer` to collect into.  Anything else — including
#: truthy stand-ins like ``1`` or ``"yes"`` — is a configuration error,
#: never silently "tracing off".
TraceFlag = bool | None | RunTracer


def resolve_tracer(trace: TraceFlag) -> RunTracer | None:
    """Normalize a user-facing ``trace`` argument (see :data:`TraceFlag`).

    ``False``/``None`` -> ``None`` (meaning: use the null tracer);
    ``True`` -> a fresh :class:`RunTracer`; a tracer instance passes
    through.

    Raises:
        ConfigurationError: for any other value.  Truthy non-``True``
            values used to be silently treated as "tracing off", which
            turned typos like ``trace=1`` into missing traces instead
            of errors.
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return RunTracer()
    if isinstance(trace, RunTracer):
        return trace
    raise ConfigurationError(
        f"trace must be True, False, None, or a RunTracer; "
        f"got {trace!r} ({type(trace).__name__})")
