"""Trace exporters: JSONL, Chrome trace-event format, summary tables.

The Chrome trace-event output loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: one process per run,
one thread track per simulated node, ``cpu`` spans as complete events,
queue depths as counter tracks, everything else as instant events.
Timestamps are simulation *microseconds* (the trace-event unit), sorted
nondecreasing so per-node tracks are monotone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.events import CPU, QUEUE, TraceEvent
from repro.obs.tracer import RunTracer


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars (and anything int/float-like) to JSON types."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _safe_args(data: dict[str, Any]) -> dict[str, Any]:
    return {key: _json_safe(value) for key, value in data.items()}


# -- JSONL --------------------------------------------------------------------

def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """One event as a flat JSON-ready dict."""
    out = {"kind": event.kind, "t": event.time, "node": event.node}
    if event.dur:
        out["dur"] = event.dur
    out.update(_safe_args(event.data))
    return out


def write_jsonl(path: str | Path, tracer: RunTracer) -> int:
    """Write one JSON object per event; returns the event count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for event in tracer.events:
            fh.write(json.dumps(event_to_dict(event)))
            fh.write("\n")
    return len(tracer.events)


# -- Chrome trace-event format ------------------------------------------------

def to_chrome_trace(tracer: RunTracer) -> dict[str, Any]:
    """The run as a Chrome trace-event JSON object.

    ``traceEvents`` is sorted by timestamp (then thread), so every
    per-node track is monotone; metadata naming events lead the list.
    """
    tids = {name: i for i, name in enumerate(tracer.nodes())}
    meta: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": str(tracer.meta.get("scheme", "repro run"))}},
    ]
    for name, tid in tids.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": tid, "args": {"name": name}})
    events: list[dict[str, Any]] = []
    for event in tracer.events:
        base = {"pid": 0, "tid": tids[event.node], "cat": event.kind,
                "ts": event.time * 1e6}
        if event.kind == CPU:
            events.append({
                **base, "ph": "X", "dur": event.dur * 1e6,
                "name": str(event.data.get("label", "cpu")),
                "args": _safe_args(event.data)})
        elif event.kind == QUEUE:
            events.append({
                **base, "ph": "C",
                "name": f"queue[{event.node}]",
                "args": {"depth": _json_safe(
                    event.data.get("depth", 0))}})
        else:
            events.append({**base, "ph": "i", "s": "t",
                           "name": event.kind,
                           "args": _safe_args(event.data)})
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return {"traceEvents": meta + events, "displayTimeUnit": "ms",
            "otherData": {key: _json_safe(value)
                          for key, value in tracer.meta.items()}}


def write_chrome_trace(path: str | Path,
                       tracer: RunTracer) -> Path:
    """Write the Chrome trace JSON for Perfetto; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)
    return path


# -- per-run summary table ----------------------------------------------------

def summary_table(tracer: RunTracer) -> str:
    """Aligned per-node table of the headline trace counters."""
    from repro.metrics.report import format_table
    headers = ["node", "sent", "received", "retransmits", "cpu busy s",
               "max queue"]
    rows = []
    for name in tracer.nodes():
        busy = sum(event.dur for event in tracer.events
                   if event.kind == CPU and event.node == name)
        _, max_queue = tracer.gauges.get(("queue_depth", name),
                                         (0.0, 0.0))
        rows.append([
            name,
            int(tracer.counter("messages_sent", name)),
            int(tracer.counter("messages_received", name)),
            int(tracer.counter("retransmissions", name)),
            f"{busy:.6f}",
            int(max_queue),
        ])
    return format_table(headers, rows)
