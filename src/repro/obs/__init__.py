"""``repro.obs`` — structured tracing and run-metrics observability.

The paper's evaluation reasons from internal protocol behaviour (who
is bottlenecked where, how many flows and correction rounds each scheme
triggers, bytes per link); this package makes that behaviour observable
without print-debugging the kernel:

* :class:`RunTracer` records typed events (message send/recv/drop/
  delay/retransmit, CPU spans, queue depths, window lifecycle, protocol
  state transitions) plus per-node/per-link counters and gauges.
* :data:`NULL_TRACER` is the zero-overhead default — hooks guard on
  ``tracer.enabled`` so untraced runs are bit-identical and unmeasurably
  close in wall time to pre-observability builds.
* Exporters emit JSONL, Chrome trace-event JSON (open in Perfetto), and
  aligned summary tables; :class:`TraceSummary` is the picklable rollup
  parallel sweep workers ship back to the parent.

Enable per run with ``repro.api.run(..., trace=True)``, the ``--trace``
CLI flag, or the ``repro trace`` subcommand.
"""

from repro.obs.events import (ALL_KINDS, CPU, MSG_DELAY, MSG_DROP,
                              MSG_RECV, MSG_RETRANSMIT, MSG_SEND, QUEUE,
                              STATE, WINDOW, TraceEvent)
from repro.obs.exporters import (event_to_dict, summary_table,
                                 to_chrome_trace, write_chrome_trace,
                                 write_jsonl)
from repro.obs.summary import (TraceSummary, format_summary,
                               merge_summaries)
from repro.obs.tracer import (GLOBAL_SCOPE, NULL_TRACER, NullTracer,
                              RunTracer, TraceFlag, resolve_tracer)

__all__ = [
    "ALL_KINDS", "CPU", "MSG_DELAY", "MSG_DROP", "MSG_RECV",
    "MSG_RETRANSMIT", "MSG_SEND", "QUEUE", "STATE", "WINDOW",
    "TraceEvent", "event_to_dict", "summary_table", "to_chrome_trace",
    "write_chrome_trace", "write_jsonl", "TraceSummary",
    "format_summary", "merge_summaries", "GLOBAL_SCOPE", "NULL_TRACER",
    "NullTracer", "RunTracer", "TraceFlag", "resolve_tracer",
]
