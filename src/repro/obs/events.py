"""Typed trace events: the observability layer's event taxonomy.

Every hook in the simulator and the schemes records one of a small,
closed set of event kinds.  Keeping the taxonomy flat and stringly-keyed
(rather than one dataclass per kind) keeps the recording hot path to a
single list append and makes exporters trivially total over kinds.

Kinds
-----

``msg_send`` / ``msg_recv``
    A protocol message entering the fabric at its source / being handled
    by the destination behaviour.  ``data``: ``msg`` (class name),
    ``dst``/``src``, ``size`` (bytes, send only), ``window`` when the
    message names one.
``msg_drop`` / ``msg_delay``
    Failure-injection outcomes (:class:`~repro.sim.failures.
    MessageFaultInjector` or any installed drop/delay hook).
``msg_retransmit``
    A timeout-driven re-send under the Section 4.3.4 failure model.
``cpu``
    A CPU occupancy span on one node (message service, aggregation
    burst, serialization).  The only kind with a duration.
``queue``
    A queue-depth sample on one node (taken on enqueue and dequeue).
``window``
    Window lifecycle at the root: ``phase`` is ``assign``, ``emit`` or
    ``correct``; ``data`` carries the window index and flow counts.
``state``
    Protocol state transition (bootstrap handoff, verification failure,
    correction start/finish, Deco_async epoch rollback).

Causal (serve) kinds
--------------------

The serve runtime additionally records *causal* events when tracing,
for the happens-before analyzer (``repro check --trace``).  Every
causal event carries ``seq`` — the recording process's own program
order, monotonically increasing per process.  A merged serve trace is
re-sorted by virtual time, which collapses concurrency, so ``seq`` (not
``time``) is what carries intra-process order; cross-process order
comes only from frame identity.

``frame_send`` / ``frame_recv``
    One control frame crossing the coordinator↔worker boundary.
    ``data``: ``seq``, ``fseq`` (the sender's frame number — the causal
    edge id), ``fkind`` (framing kind), and ``dst`` (send) / ``edge``
    (recv: the sending process's name).  A recv with frame id
    ``(edge, fseq)`` happens-after the matching send.
``timer_sched`` / ``timer_fire``
    A worker scheduling / firing one of its own timers.  ``data``:
    ``seq``, ``token``, plus ``at`` on the schedule.
``op_emit``
    A worker finishing one executed item (slot or epoch-local timer)
    and emitting its op batch.  ``data``: ``seq``, ``ref``
    (``"slot:3"`` / ``"timer:7"`` / ``"rpc"`` in lockstep), ``epoch``
    (coordinator round ordinal, ``-1`` for lockstep), ``windows``
    (comma-joined window indices emitted by the item, often empty).
``op_apply``
    The coordinator applying one merged op batch onto the kernel.
    ``data``: ``seq``, ``src`` (worker), ``ref``/``epoch`` matching the
    worker's ``op_emit``, the canonical merge key split into scalars
    (``kt``/``kp``/``kr``/``kc``/``kb``), and ``windows``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

MSG_SEND = "msg_send"
MSG_RECV = "msg_recv"
MSG_DROP = "msg_drop"
MSG_DELAY = "msg_delay"
MSG_RETRANSMIT = "msg_retransmit"
CPU = "cpu"
QUEUE = "queue"
WINDOW = "window"
STATE = "state"
FRAME_SEND = "frame_send"
FRAME_RECV = "frame_recv"
TIMER_SCHED = "timer_sched"
TIMER_FIRE = "timer_fire"
OP_EMIT = "op_emit"
OP_APPLY = "op_apply"

#: Every kind a tracer may record, in display order.
ALL_KINDS = (MSG_SEND, MSG_RECV, MSG_DROP, MSG_DELAY, MSG_RETRANSMIT,
             CPU, QUEUE, WINDOW, STATE, FRAME_SEND, FRAME_RECV,
             TIMER_SCHED, TIMER_FIRE, OP_EMIT, OP_APPLY)

#: The set of kinds carrying causal ``seq``/frame-id fields.
CAUSAL_KINDS = frozenset((FRAME_SEND, FRAME_RECV, TIMER_SCHED,
                          TIMER_FIRE, OP_EMIT, OP_APPLY))

#: Process name the coordinator records causal events under (workers
#: record under their node name).
COORD_PROCESS = "coordinator"


@dataclass
class TraceEvent:
    """One recorded event.

    ``time`` is simulation seconds; ``dur`` is nonzero only for ``cpu``
    spans.  ``data`` holds the kind-specific fields listed in the module
    docstring — JSON-scalar values only, so every exporter can serialize
    without inspection.
    """

    kind: str
    time: float
    node: str
    dur: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)
