"""Typed trace events: the observability layer's event taxonomy.

Every hook in the simulator and the schemes records one of a small,
closed set of event kinds.  Keeping the taxonomy flat and stringly-keyed
(rather than one dataclass per kind) keeps the recording hot path to a
single list append and makes exporters trivially total over kinds.

Kinds
-----

``msg_send`` / ``msg_recv``
    A protocol message entering the fabric at its source / being handled
    by the destination behaviour.  ``data``: ``msg`` (class name),
    ``dst``/``src``, ``size`` (bytes, send only), ``window`` when the
    message names one.
``msg_drop`` / ``msg_delay``
    Failure-injection outcomes (:class:`~repro.sim.failures.
    MessageFaultInjector` or any installed drop/delay hook).
``msg_retransmit``
    A timeout-driven re-send under the Section 4.3.4 failure model.
``cpu``
    A CPU occupancy span on one node (message service, aggregation
    burst, serialization).  The only kind with a duration.
``queue``
    A queue-depth sample on one node (taken on enqueue and dequeue).
``window``
    Window lifecycle at the root: ``phase`` is ``assign``, ``emit`` or
    ``correct``; ``data`` carries the window index and flow counts.
``state``
    Protocol state transition (bootstrap handoff, verification failure,
    correction start/finish, Deco_async epoch rollback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

MSG_SEND = "msg_send"
MSG_RECV = "msg_recv"
MSG_DROP = "msg_drop"
MSG_DELAY = "msg_delay"
MSG_RETRANSMIT = "msg_retransmit"
CPU = "cpu"
QUEUE = "queue"
WINDOW = "window"
STATE = "state"

#: Every kind a tracer may record, in display order.
ALL_KINDS = (MSG_SEND, MSG_RECV, MSG_DROP, MSG_DELAY, MSG_RETRANSMIT,
             CPU, QUEUE, WINDOW, STATE)


@dataclass
class TraceEvent:
    """One recorded event.

    ``time`` is simulation seconds; ``dur`` is nonzero only for ``cpu``
    spans.  ``data`` holds the kind-specific fields listed in the module
    docstring — JSON-scalar values only, so every exporter can serialize
    without inspection.
    """

    kind: str
    time: float
    node: str
    dur: float = 0.0
    data: dict[str, Any] = field(default_factory=dict)
