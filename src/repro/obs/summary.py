"""Compact, picklable trace summaries.

Full event lists are too heavy to ship from every parallel sweep worker
back to the parent, so workers condense their :class:`~repro.obs.
tracer.RunTracer` into a :class:`TraceSummary`: event totals per kind,
the counter registry, and gauge highs.  Summaries merge associatively,
which is what lets a sweep present one fleet-wide view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.obs.events import ALL_KINDS
from repro.obs.tracer import RunTracer


@dataclass
class TraceSummary:
    """Per-run (or merged) trace rollup, cheap to pickle."""

    scheme: str = ""
    runs: int = 1
    events: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    counters: dict[tuple[str, str], float] = field(default_factory=dict)
    gauge_max: dict[tuple[str, str], float] = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: RunTracer,
                    scheme: str = "") -> "TraceSummary":
        """Condense one run's tracer."""
        return cls(
            scheme=scheme or str(tracer.meta.get("scheme", "")),
            events=len(tracer.events),
            by_kind=tracer.counts_by_kind(),
            counters=dict(tracer.counters),
            gauge_max={key: high
                       for key, (_, high) in tracer.gauges.items()})

    def merge(self, other: "TraceSummary") -> "TraceSummary":
        """Associative combination of two summaries (new object)."""
        by_kind = dict(self.by_kind)
        for kind, n in other.by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0) + n
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauge_max = dict(self.gauge_max)
        for key, value in other.gauge_max.items():
            gauge_max[key] = max(gauge_max.get(key, value), value)
        schemes = {s for s in (self.scheme, other.scheme) if s}
        return TraceSummary(
            scheme="+".join(sorted(schemes)),
            runs=self.runs + other.runs,
            events=self.events + other.events, by_kind=by_kind,
            counters=counters, gauge_max=gauge_max)


def merge_summaries(
        summaries: Iterable[TraceSummary | None]
) -> TraceSummary | None:
    """Merge a sweep's per-worker summaries (ignoring untraced runs).

    Returns ``None`` when nothing was traced.
    """
    merged: TraceSummary | None = None
    for summary in summaries:
        if summary is None:
            continue
        merged = summary if merged is None else merged.merge(summary)
    return merged


def format_summary(summary: TraceSummary) -> str:
    """Render a summary as an aligned text table."""
    from repro.metrics.report import format_table
    rows = [["runs", summary.runs], ["events", summary.events]]
    rows += [[f"events:{kind}", summary.by_kind[kind]]
             for kind in ALL_KINDS if kind in summary.by_kind]
    for (name, scope), value in sorted(summary.counters.items()):
        label = f"{name}[{scope}]" if scope else name
        rows.append([label, value])
    for (name, scope), value in sorted(summary.gauge_max.items()):
        label = f"max {name}[{scope}]" if scope else f"max {name}"
        rows.append([label, value])
    return format_table(["metric", "value"], rows)
