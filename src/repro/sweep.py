"""Parallel sweep executor for independent scheme runs.

Every figure of the evaluation is a *sweep*: several schemes times
several configurations, each an independent, single-threaded,
seed-deterministic simulation.  :class:`SweepExecutor` exploits that
embarrassingly parallel structure by fanning :class:`RunConfig`s out
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
the results bit-identical to a serial run:

* Each simulation stays single-threaded and seed-driven — parallelism
  is purely across runs, so per-run determinism is untouched.
* Results return in deterministic submission order (never completion
  order).
* Workloads are pre-generated once per distinct parameter tuple via the
  content-addressed cache in :mod:`repro.core.workload` and shipped to
  workers as ``.npz`` spill paths, so a 7-scheme sweep generates (and
  pickles) each multi-million-event workload once instead of 7 times.

``jobs`` resolves from the explicit argument, then the ``REPRO_JOBS``
environment variable, then ``os.cpu_count()``.  ``jobs=1`` bypasses the
process pool entirely and runs in-process, so a sweep stays trivially
debuggable (breakpoints, pdb, exceptions with full local state).

Standing queries sweep too: a :class:`RunConfig` with ``queries`` set
admits those specs on every local stream, and each result carries the
per-query accounts (``RunResult.queries``).  The sharing toggle
(``REPRO_QUERY_SHARING``) is part of the propagated environment, so an
A/B sweep of shared vs. unshared multi-query execution parallelizes
like any other.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence

from repro.core.records import RunResult
from repro.core.runner import RunConfig, get_scheme, run_scheme
from repro.core.workload import (Workload, WorkloadCache, WorkloadSpec,
                                 default_cache, load_spilled)
from repro.errors import ConfigurationError
from repro.obs.summary import TraceSummary
from repro.obs.tracer import RunTracer

#: Environment variable setting the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Behaviour-selecting environment variables replayed into every pool
#: worker.  Child processes inherit the parent's environment at fork /
#: spawn time, but that snapshot is taken when the *pool* starts — a
#: caller who flips one of these after constructing a
#: :class:`SweepExecutor` (or who relies on a mutation made between
#: sweeps on a long-lived executor) would silently race the pool's
#: start-up.  The initializer pins the contract instead: every worker
#: starts from the parent's values as of the moment the sweep ran.
PROPAGATED_ENV = ("REPRO_WIRE_CODEC", "REPRO_AGG_INDEX",
                  "REPRO_WORKLOAD_CACHE", "REPRO_QUERY_SHARING")


def snapshot_env() -> dict[str, str]:
    """The parent-side values of :data:`PROPAGATED_ENV` (unset = absent)."""
    return {key: os.environ[key]
            for key in PROPAGATED_ENV if key in os.environ}


def _init_worker(env: dict[str, str]) -> None:
    """Pool-worker initializer: replay the parent's env snapshot."""
    for key in PROPAGATED_ENV:
        os.environ.pop(key, None)
    os.environ.update(env)


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: argument > ``$REPRO_JOBS`` > CPUs."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{JOBS_ENV} must be an integer, "
                    f"got {env!r}") from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


#: Per-worker memo of spilled workloads, so a worker that runs several
#: schemes over the same workload maps the spill once.  Ordered by
#: recency of use: eviction removes only the least-recently-used entry,
#: so the workloads a worker keeps cycling through stay resident.
# Deliberate per-worker cache: keyed by spill path, holding immutable
# workloads — a hit returns bit-identical data to a regeneration, so
# sharing across runs cannot change results.
_WORKER_WORKLOADS: "OrderedDict[str, Workload]" = OrderedDict()  # decolint: disable=DL005
_WORKER_MEMO_CAPACITY = 4


def _run_one(config: RunConfig,
             payload: None | str | Workload
             ) -> tuple[RunResult, TraceSummary | None]:
    """Worker entry point: run one config over a shipped workload.

    ``payload`` is a spill-file path (the normal case — workers load
    the pre-generated workload with ``np.load`` instead of regenerating
    it), an in-memory :class:`Workload` (spilling disabled), or ``None``
    (generate locally).

    Returns the run result plus a picklable
    :class:`~repro.obs.summary.TraceSummary` when ``config.trace`` is
    set (full event lists stay worker-side; only the rollup ships back).
    """
    workload: Workload | None
    if isinstance(payload, str):
        workload = _WORKER_WORKLOADS.get(payload)
        if workload is None:
            workload = load_spilled(payload)
            while len(_WORKER_WORKLOADS) >= _WORKER_MEMO_CAPACITY:
                _WORKER_WORKLOADS.popitem(last=False)
            _WORKER_WORKLOADS[payload] = workload
        else:
            _WORKER_WORKLOADS.move_to_end(payload)
    else:
        workload = payload
    tracer = RunTracer() if config.trace else None
    result, _ = run_scheme(config, workload, tracer)
    summary = (TraceSummary.from_tracer(tracer, scheme=config.scheme)
               if tracer is not None else None)
    return result, summary


class SweepExecutor:
    """Run independent :class:`RunConfig`s, in parallel when asked.

    Args:
        jobs: Worker processes; ``None`` resolves via ``$REPRO_JOBS``
            then ``os.cpu_count()``.  ``1`` runs serially in-process.
        cache: Workload cache to pre-generate and share workloads
            through; defaults to the process-wide cache.
    """

    def __init__(self, jobs: int | None = None,
                 cache: WorkloadCache | None = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache if cache is not None else default_cache()
        #: Per-config trace rollups of the last sweep, aligned with the
        #: submitted configs (``None`` for untraced runs).  Merge with
        #: :func:`repro.obs.summary.merge_summaries` for a fleet view.
        self.trace_summaries: list[TraceSummary | None] = []

    def run(self, configs: Sequence[RunConfig]) -> list[RunResult]:
        """Run every config; results in submission order."""
        return [result for result, _ in self.run_with_workloads(configs)]

    def run_with_workloads(
            self, configs: Sequence[RunConfig]
    ) -> list[tuple[RunResult, Workload]]:
        """Run every config; returns ``(result, workload)`` pairs in
        submission order.

        The workload of each pair is the parent-process cached object
        (shared across configs with equal :meth:`RunConfig.workload_key`),
        which the metrics layer needs for correctness/latency.
        """
        configs = list(configs)
        self.trace_summaries = []
        if not configs:
            return []
        # Fail fast on typo'd scheme names before spending seconds
        # generating workloads (and before forking workers).
        for config in configs:
            get_scheme(config.scheme)
        # Generate each distinct workload exactly once, up front.
        workloads: dict[WorkloadSpec, Workload] = {}
        for config in configs:
            spec = config.workload_key()
            if spec not in workloads:
                workloads[spec] = self.cache.get(spec)
        if self.jobs == 1 or len(configs) == 1:
            out: list[tuple[RunResult, Workload]] = []
            for config in configs:
                workload = workloads[config.workload_key()]
                result, summary = _run_one(config, workload)
                self.trace_summaries.append(summary)
                out.append((result, workload))
            return out
        # Ship workloads as spill paths when possible (workers memmap
        # the shared file — one page-cache copy for all of them) and
        # fall back to pickling the workload.
        payloads: dict[WorkloadSpec, str | Workload] = {}
        for spec, workload in workloads.items():
            if self.cache.spill:
                payloads[spec] = str(self.cache.ensure_spilled(spec))
            else:
                payloads[spec] = workload
        max_workers = min(self.jobs, len(configs))
        with ProcessPoolExecutor(max_workers=max_workers,
                                 initializer=_init_worker,
                                 initargs=(snapshot_env(),)) as pool:
            futures = [
                pool.submit(_run_one, config,
                            payloads[config.workload_key()])
                for config in configs]
            results = []
            for future in futures:
                result, summary = future.result()
                results.append(result)
                self.trace_summaries.append(summary)
        return [(result, workloads[config.workload_key()])
                for result, config in zip(results, configs,
                                          strict=True)]
