"""Command-line interface: ``python -m repro ...``.

Subcommands:

* ``schemes`` — list the registered schemes.
* ``run`` — run one scheme and print its headline metrics.
* ``compare`` — run several schemes over one workload and print a table.
* ``experiment`` — regenerate one of the paper's figures.
* ``trace`` — run one scheme with tracing and write the trace to disk
  (Chrome trace-event JSON for Perfetto, or JSONL).
* ``serve`` — run one scheme on the serve runtime: every node a real
  OS process speaking the binary wire codec over TCP, results
  bit-identical to the simulator, plus wall-clock latency/throughput.
* ``bench-serve`` — the serve load benchmark; writes
  ``BENCH_serve.json``.
* ``lint`` — run deco-lint, the repo-specific static-analysis pass
  (rules DL001-DL011; see :mod:`repro.analysis`).
* ``check`` — the concurrency verifier: small-scope interleaving model
  checking of epoch-mode serve and happens-before analysis of captured
  serve traces (see :mod:`repro.analysis.check`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api import ALL_SCHEMES, compare, run
from repro.core.runner import available_schemes
from repro.metrics.report import format_si, format_table

#: Experiment name -> (headers, rows-callable(scale)).  Written once,
#: lazily, by ``_register_experiments`` in the CLI process — never from
#: sweep workers.
_EXPERIMENTS = {}  # decolint: disable=DL005


def _register_experiments():
    from repro.experiments import fig7, fig8, fig9, fig10, fig11, micro

    def rate_sweep_rows(maker):
        def rows(scale):
            return maker(fig10.run_rate_change_sweep(scale))
        return rows

    def window_sweep_rows(maker, change=0.01):
        def rows(scale):
            return maker(fig10.run_window_size_sweep(scale, change))
        return rows

    adaptivity = ["rate change", "approx", "deco_mon", "deco_sync",
                  "deco_async"]
    windows = ["window size", "approx", "deco_mon", "deco_sync",
               "deco_async"]
    e2e = ["local nodes", "central", "scotty", "disco", "deco_async"]
    _EXPERIMENTS.update({
        "fig7a": (["approach", "throughput ev/s", "vs scotty"],
                  fig7.rows_fig7a),
        "fig7b": (["approach", "latency ms", "vs deco_async"],
                  fig7.rows_fig7b),
        "fig8a": (["approach", "total bytes", "saving vs central"],
                  fig8.rows_fig8a),
        "fig8b": (["local nodes", "central", "scotty", "disco",
                   "deco_async"], fig8.rows_fig8b),
        "fig9a": (e2e, fig9.rows_fig9a),
        "fig9b": (e2e, fig9.rows_fig9b),
        "micro": (["approach", "window cycle ms", "vs deco_mon"],
                  micro.rows_micro),
        "fig10a": (adaptivity, rate_sweep_rows(fig10.rows_fig10a)),
        "fig10b": (adaptivity, rate_sweep_rows(fig10.rows_fig10b)),
        "fig10c": (["rate change", "sync corr/100w", "async corr/100w"],
                   rate_sweep_rows(fig10.rows_fig10c)),
        "fig10d": (adaptivity, rate_sweep_rows(fig10.rows_fig10d)),
        "fig10e": (windows, window_sweep_rows(fig10.rows_fig10e)),
        "fig10f": (windows, window_sweep_rows(fig10.rows_fig10f, 0.5)),
        "fig11a": (["approach", "throughput ev/s"], fig11.rows_fig11a),
        "fig11bc": (["approach", "bandwidth MB/s", "latency ms"],
                    fig11.rows_fig11bc),
        "fig11d": (["raspberry pis", "central", "scotty", "disco",
                    "deco_async"], fig11.rows_fig11d),
    })


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deco (EDBT 2024) reproduction: decentralized "
                    "count-window aggregation")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list registered schemes")

    def add_run_args(p, load_flag="--mode"):
        p.add_argument("--nodes", type=int, default=2,
                       help="local node count")
        p.add_argument("--window", type=int, default=10_000,
                       help="global count window size")
        p.add_argument("--windows", type=int, default=10,
                       help="number of global windows")
        p.add_argument("--rate", type=float, default=100_000,
                       help="events/s per local node")
        p.add_argument("--rate-change", type=float, default=0.01,
                       help="rate-change fraction (0.01 = 1%%)")
        p.add_argument("--aggregate", default="sum")
        # ``serve`` names this --load (its --mode picks the
        # coordination mode); everywhere else it stays --mode.
        p.add_argument(load_flag, dest="load",
                       choices=("throughput", "latency"),
                       default="throughput",
                       help="throughput = saturated input; latency = "
                            "paced arrivals")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--delta-m", type=int, default=4)
        p.add_argument("--min-delta", type=int, default=4)
        p.add_argument("--queries", action="append", default=None,
                       metavar="AGG:LEN[:STEP]",
                       help="admit a standing query on every local "
                            "stream (repeatable; e.g. --queries "
                            "sum:1000 --queries avg:700:350).  All "
                            "queries share one slice store + partial "
                            "tree per stream (REPRO_QUERY_SHARING=0 "
                            "falls back to per-query pipelines with "
                            "bit-identical results); one --queries "
                            "flag is the single-query degenerate case "
                            "of the same path")
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for sweeps (default: "
                            "$REPRO_JOBS, then CPU count; 1 = serial)")

    run_p = sub.add_parser("run", help="run one scheme")
    run_p.add_argument("scheme")
    add_run_args(run_p)
    run_p.add_argument("--trace", metavar="PATH", default=None,
                       help="also record a trace and write it to PATH "
                            "as Chrome trace-event JSON (Perfetto)")

    trace_p = sub.add_parser(
        "trace", help="run one scheme with tracing; write the trace")
    trace_p.add_argument("--scheme", required=True)
    add_run_args(trace_p)
    trace_p.add_argument("--out", default="trace.json",
                         help="output path (default: trace.json)")
    trace_p.add_argument("--format", choices=("chrome", "jsonl"),
                         default="chrome",
                         help="chrome = trace-event JSON for Perfetto; "
                              "jsonl = one event per line")
    trace_p.add_argument("--runtime", choices=("sim", "serve"),
                         default="sim",
                         help="sim = discrete-event simulator; serve = "
                              "real node processes over TCP (identical "
                              "results, real wall-clock spans)")

    cmp_p = sub.add_parser("compare",
                           help="run several schemes, same workload")
    cmp_p.add_argument("schemes_list", nargs="+", metavar="scheme")
    add_run_args(cmp_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper figure")
    exp_p.add_argument("name", help="figure id, e.g. fig7a (or 'list')")
    exp_p.add_argument("--scale", type=float, default=0.5,
                       help="workload scale factor")
    exp_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the sweep (default: "
                            "$REPRO_JOBS, then CPU count; 1 = serial)")

    serve_p = sub.add_parser(
        "serve", help="run one scheme as real node processes over TCP")
    serve_p.add_argument("scheme")
    add_run_args(serve_p, load_flag="--load")
    serve_p.add_argument("--mode", choices=("epoch", "lockstep"),
                         default="epoch",
                         help="epoch = concurrent conservative-"
                              "lookahead batches (default); lockstep = "
                              "one kernel event per round-trip (the "
                              "verification oracle's pace)")
    serve_p.add_argument("--sources", type=int, default=1,
                         help="concurrent paced source clients per "
                              "local node (--load latency only)")
    serve_p.add_argument("--verify", action="store_true",
                         help="also run the simulator and assert the "
                              "serve fingerprint matches it")

    bench_p = sub.add_parser(
        "bench-serve",
        help="serve load benchmark: latency + throughput per scheme; "
             "writes BENCH_serve.json")
    bench_p.add_argument("--schemes", default=None,
                         help="comma-separated scheme list (default: "
                              "deco_sync,deco_async,central)")
    bench_p.add_argument("--quick", action="store_true",
                         help="small workload (also $REPRO_BENCH_QUICK)")
    bench_p.add_argument("--out", default=None,
                         help="output path (default: BENCH_serve.json "
                              "at the repo root)")
    bench_p.add_argument("--floor", type=float, default=None,
                         help="minimum epoch/lockstep saturated-"
                              "throughput ratio per scheme; below it "
                              "the benchmark fails (CI perf gate)")

    lint_p = sub.add_parser(
        "lint", help="run deco-lint (rules DL001-DL011)")
    lint_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--select", default=None,
                        help="comma-separated rule codes to run")
    lint_p.add_argument("--report-only", action="store_true",
                        help="print findings but always exit 0")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="list rules and exit")

    check_p = sub.add_parser(
        "check",
        help="concurrency verifier: interleaving model checking "
             "(--explore) and happens-before trace analysis (--trace)")
    check_p.add_argument("--explore", action="store_true")
    check_p.add_argument("--trace", metavar="PATH", default=None)
    check_p.add_argument("--schemes", default=None)
    check_p.add_argument("--nodes", default=None)
    check_p.add_argument("--epochs", type=int, default=None)
    check_p.add_argument("--budget", type=int, default=None)
    check_p.add_argument("--seed-bug", default=None)
    check_p.add_argument("--expect-violations", action="store_true")
    return parser


def _run_kwargs(args) -> dict:
    return dict(n_nodes=args.nodes, window_size=args.window,
                n_windows=args.windows, rate_per_node=args.rate,
                rate_change=args.rate_change, aggregate=args.aggregate,
                mode=args.load, seed=args.seed, delta_m=args.delta_m,
                min_delta=args.min_delta,
                queries=tuple(args.queries or ()))


def _print_queries(queries: dict) -> None:
    """Per-standing-query account table (``--queries`` runs)."""
    if not queries:
        return
    rows = []
    for qid, acct in queries.items():
        shared = (f"dedup->{acct['deduped_into']}"
                  if acct.get("deduped_into") else "owner")
        rows.append([qid, acct["stream"], acct["label"], shared,
                     str(acct["windows"]), str(acct["combines"]),
                     str(acct["edge_events"]),
                     acct["fingerprint"][:12]])
    print()
    print(format_table(
        ["query", "stream", "spec", "sharing", "windows", "combines",
         "edge events", "fingerprint"], rows))


def _summary_row(name: str, summary) -> list[str]:
    metric = (format_si(summary.throughput, " ev/s")
              if summary.throughput is not None
              else f"{summary.latency_s * 1e3:.3f} ms")
    return [name, metric, format_si(summary.total_bytes, "B"),
            f"{summary.correctness:.4f}",
            str(summary.correction_steps)]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        from repro.analysis.lint import main as lint_main
        lint_argv = list(args.paths)
        if args.select:
            lint_argv += ["--select", args.select]
        if args.report_only:
            lint_argv.append("--report-only")
        if args.list_rules:
            lint_argv.append("--list-rules")
        return lint_main(lint_argv)

    if args.command == "check":
        from repro.analysis.check import main as check_main
        check_argv = []
        if args.explore:
            check_argv.append("--explore")
        if args.trace is not None:
            check_argv += ["--trace", args.trace]
        if args.schemes is not None:
            check_argv += ["--schemes", args.schemes]
        if args.nodes is not None:
            check_argv += ["--nodes", args.nodes]
        if args.epochs is not None:
            check_argv += ["--epochs", str(args.epochs)]
        if args.budget is not None:
            check_argv += ["--budget", str(args.budget)]
        if args.seed_bug is not None:
            check_argv += ["--seed-bug", args.seed_bug]
        if args.expect_violations:
            check_argv.append("--expect-violations")
        return check_main(check_argv)

    if args.command == "schemes":
        import repro.baselines  # noqa: F401
        import repro.core  # noqa: F401
        for name in available_schemes():
            print(name)
        return 0

    headers = ["scheme", "throughput/latency", "network", "correct",
               "corrections"]
    if args.command == "run":
        summary = run(args.scheme, trace=bool(args.trace),
                      **_run_kwargs(args))
        print(format_table(headers,
                           [_summary_row(args.scheme, summary)]))
        _print_queries(summary.queries)
        if args.trace:
            from repro.obs import write_chrome_trace
            path = write_chrome_trace(args.trace, summary.trace)
            print(f"trace: {path} ({len(summary.trace.events)} events; "
                  f"open in https://ui.perfetto.dev)")
        return 0

    if args.command == "trace":
        from repro.obs import (summary_table, write_chrome_trace,
                               write_jsonl)
        if args.runtime == "serve":
            from repro.api import _make_config, _summarize
            from repro.obs.tracer import RunTracer
            from repro.serve import run_scheme_served
            tracer = RunTracer()
            report = run_scheme_served(
                _make_config(args.scheme, **_run_kwargs(args)),
                tracer=tracer)
            summary = _summarize(
                _make_config(args.scheme, **_run_kwargs(args)),
                args.load, report.result, report.workload)
        else:
            summary = run(args.scheme, trace=True, **_run_kwargs(args))
            tracer = summary.trace
        if args.format == "chrome":
            path = write_chrome_trace(args.out, tracer)
        else:
            write_jsonl(args.out, tracer)
            path = args.out
        print(format_table(headers,
                           [_summary_row(args.scheme, summary)]))
        print()
        print(summary_table(tracer))
        print(f"\ntrace: {path} ({len(tracer.events)} events, "
              f"format={args.format})")
        if args.format == "chrome":
            print("open in https://ui.perfetto.dev (or chrome://tracing)")
        return 0

    if args.command == "serve":
        from repro.api import _make_config
        from repro.serve import run_scheme_served
        if args.sources > 1 and args.load != "latency":
            print("--sources needs --load latency (paced arrivals); "
                  "a saturated feed has no arrival schedule to split",
                  file=sys.stderr)
            return 2
        config = _make_config(args.scheme,
                              sources_per_node=args.sources,
                              **_run_kwargs(args))
        report = run_scheme_served(config, mode=args.mode)
        pct = report.latency_percentiles()
        print(format_table(
            ["scheme", "mode", "windows", "wall s", "throughput ev/s",
             "p50 ms", "p95 ms", "p99 ms"],
            [[args.scheme, args.mode, str(report.result.n_windows),
              f"{report.wall_seconds:.3f}",
              format_si(report.throughput_eps, ""),
              f"{pct['p50_s'] * 1e3:.3f}",
              f"{pct['p95_s'] * 1e3:.3f}",
              f"{pct['p99_s'] * 1e3:.3f}"]]))
        _print_queries(report.result.queries)
        if args.verify:
            from repro.serve.bench import verify_against_simulator
            verify_against_simulator(config, report.result)
            print("verified: serve fingerprint == simulator oracle")
        return 0

    if args.command == "bench-serve":
        from pathlib import Path

        from repro.serve.bench import BENCH_SCHEMES, run_bench
        schemes = (tuple(args.schemes.split(","))
                   if args.schemes else BENCH_SCHEMES)
        quick = args.quick or None
        out = Path(args.out) if args.out else None
        run_bench(schemes=schemes, quick=quick, out_path=out,
                  floor=args.floor)
        return 0

    if args.command == "compare":
        results = compare(args.schemes_list, jobs=args.jobs,
                          **_run_kwargs(args))
        print(format_table(headers,
                           [_summary_row(n, s)
                            for n, s in results.items()]))
        return 0

    if args.command == "experiment":
        if args.jobs is not None:
            # The figure drivers resolve workers from $REPRO_JOBS.
            os.environ["REPRO_JOBS"] = str(args.jobs)
        _register_experiments()
        if args.name == "list":
            for name in sorted(_EXPERIMENTS):
                print(name)
            return 0
        if args.name not in _EXPERIMENTS:
            print(f"unknown experiment {args.name!r}; try "
                  f"'experiment list'", file=sys.stderr)
            return 2
        headers, rows_fn = _EXPERIMENTS[args.name]
        print(f"== {args.name} (scale {args.scale}) ==")
        print(format_table(headers, rows_fn(args.scale)))
        return 0

    return 2  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
