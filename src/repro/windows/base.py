"""Window type and measure definitions (paper Sections 2.1-2.2).

Window *types*: tumbling, sliding, session (plus user-defined, which we
model as session-with-predicate).  Window *measures*: count and time.
Deco's contribution targets count-based windows; time-based types are
implemented as the substrate baseline systems (Disco, Scotty) natively
support them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class WindowMeasure(enum.Enum):
    """How window extent is measured."""

    COUNT = "count"
    TIME = "time"


class WindowKind(enum.Enum):
    """The window type taxonomy of Section 2.1."""

    TUMBLING = "tumbling"
    SLIDING = "sliding"
    SESSION = "session"


@dataclass(frozen=True)
class WindowSpec:
    """Base class for window specifications."""

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""


@dataclass(frozen=True)
class TumblingCountWindow(WindowSpec):
    """Groups of ``length`` successive events — Deco's target window."""

    length: int
    kind = WindowKind.TUMBLING
    measure = WindowMeasure.COUNT

    def validate(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(
                f"window length must be > 0, got {self.length}")


@dataclass(frozen=True)
class SlidingCountWindow(WindowSpec):
    """Fixed ``length`` with a count ``step`` between window starts."""

    length: int
    step: int
    kind = WindowKind.SLIDING
    measure = WindowMeasure.COUNT

    def validate(self) -> None:
        if self.length <= 0 or self.step <= 0:
            raise ConfigurationError(
                f"length and step must be > 0, got {self.length}/{self.step}")
        if self.step > self.length:
            raise ConfigurationError(
                f"step {self.step} > length {self.length} would drop events")


@dataclass(frozen=True)
class TumblingTimeWindow(WindowSpec):
    """Fixed time extent windows, measured in timestamp ticks."""

    length_ticks: int
    kind = WindowKind.TUMBLING
    measure = WindowMeasure.TIME

    def validate(self) -> None:
        if self.length_ticks <= 0:
            raise ConfigurationError(
                f"length_ticks must be > 0, got {self.length_ticks}")


@dataclass(frozen=True)
class SlidingTimeWindow(WindowSpec):
    """Fixed time extent with a time step between window starts."""

    length_ticks: int
    step_ticks: int
    kind = WindowKind.SLIDING
    measure = WindowMeasure.TIME

    def validate(self) -> None:
        if self.length_ticks <= 0 or self.step_ticks <= 0:
            raise ConfigurationError(
                f"length_ticks and step_ticks must be > 0, got "
                f"{self.length_ticks}/{self.step_ticks}")
        if self.step_ticks > self.length_ticks:
            raise ConfigurationError(
                f"step {self.step_ticks} > length {self.length_ticks} "
                f"would drop events")


@dataclass(frozen=True)
class SessionWindow(WindowSpec):
    """Terminated by a gap of ``gap_ticks`` without events."""

    gap_ticks: int
    kind = WindowKind.SESSION
    measure = WindowMeasure.TIME

    def validate(self) -> None:
        if self.gap_ticks <= 0:
            raise ConfigurationError(
                f"gap_ticks must be > 0, got {self.gap_ticks}")
