"""Session window operator.

A session window "is terminated by a gap in which no events arrive for a
fixed amount of time" (Section 2.1) — e.g. HTTP sessions or ATM
interactions.  Sessions have unfixed sizes, so they are emitted as soon
as the terminating gap is observed in event time.
"""

from __future__ import annotations


import numpy as np

from repro.errors import StreamError
from repro.streams.batch import EventBatch
from repro.windows.base import SessionWindow


class SessionOperator:
    """Stream operator emitting gap-terminated session windows."""

    def __init__(self, spec: SessionWindow) -> None:
        spec.validate()
        self.spec = spec
        self._pending: list[EventBatch] = []
        self._last_ts: int = -1

    @property
    def open_session(self) -> bool:
        """Whether a session is currently accumulating events."""
        return bool(self._pending)

    def add(self, batch: EventBatch) -> list[EventBatch]:
        """Feed a timestamp-sorted batch; return completed sessions."""
        if not batch.is_ts_sorted():
            raise StreamError(
                "session windows require timestamp-sorted input")
        out: list[EventBatch] = []
        gap = self.spec.gap_ticks
        while len(batch):
            if self._last_ts < 0:
                # No open session: the first event opens one.
                self._pending.append(batch.take(1))
                self._last_ts = int(batch.ts[0])
                batch = batch.drop(1)
                continue
            # Find the first event whose inter-arrival gap closes the
            # session: diff to predecessor >= gap.
            prev_ts = np.concatenate(
                [np.array([self._last_ts], dtype=np.int64), batch.ts[:-1]])
            breaks = np.nonzero(batch.ts - prev_ts >= gap)[0]
            if len(breaks) == 0:
                self._pending.append(batch)
                self._last_ts = int(batch.ts[-1])
                break
            cut = int(breaks[0])
            head, batch = batch.split(cut)
            if len(head):
                self._pending.append(head)
                self._last_ts = int(head.ts[-1])
            out.append(EventBatch.concat(self._pending))
            self._pending = []
            self._last_ts = -1
        return out

    def flush(self) -> EventBatch:
        """Close and return the open session (end of stream)."""
        session = EventBatch.concat(self._pending)
        self._pending = []
        self._last_ts = -1
        return session
