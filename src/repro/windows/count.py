"""Count-based window operators.

A count window operator consumes batches in arrival order and emits every
complete window.  Tumbling windows partition the stream into groups of
``length`` events; sliding windows emit a window of ``length`` events for
every ``step`` events.
"""

from __future__ import annotations


from repro.streams.batch import EventBatch
from repro.windows.base import SlidingCountWindow, TumblingCountWindow


class TumblingCountOperator:
    """Stream operator emitting tumbling count windows."""

    def __init__(self, spec: TumblingCountWindow) -> None:
        spec.validate()
        self.spec = spec
        self._pending: list[EventBatch] = []
        self._pending_len = 0

    @property
    def buffered(self) -> int:
        """Events currently buffered in the incomplete window."""
        return self._pending_len

    def add(self, batch: EventBatch) -> list[EventBatch]:
        """Feed a batch; return any windows it completes, in order."""
        out: list[EventBatch] = []
        length = self.spec.length
        while len(batch):
            need = length - self._pending_len
            head, batch = batch.split(need)
            self._pending.append(head)
            self._pending_len += len(head)
            if self._pending_len == length:
                out.append(EventBatch.concat(self._pending))
                self._pending = []
                self._pending_len = 0
        return out

    def flush(self) -> EventBatch:
        """Return and clear the incomplete tail window."""
        tail = EventBatch.concat(self._pending)
        self._pending = []
        self._pending_len = 0
        return tail


class SlidingCountOperator:
    """Stream operator emitting sliding count windows.

    Keeps the minimal suffix of the stream needed for future windows
    (``length`` events), so memory stays bounded by the window length.
    """

    def __init__(self, spec: SlidingCountWindow) -> None:
        spec.validate()
        self.spec = spec
        self._tail = EventBatch.empty()
        # Absolute stream position of the first event retained in _tail.
        self._tail_start = 0
        # Start position of the next window to emit.
        self._next_window_start = 0

    def add(self, batch: EventBatch) -> list[EventBatch]:
        """Feed a batch; return completed sliding windows, in order."""
        self._tail = EventBatch.concat([self._tail, batch])
        out: list[EventBatch] = []
        length, step = self.spec.length, self.spec.step
        end = self._tail_start + len(self._tail)
        while self._next_window_start + length <= end:
            lo = self._next_window_start - self._tail_start
            out.append(self._tail.slice_range(lo, lo + length))
            self._next_window_start += step
        # Evict events no future window can reference.
        evict = self._next_window_start - self._tail_start
        if evict > 0:
            self._tail = self._tail.drop(evict)
            self._tail_start += evict
        return out
