"""Scotty-style stream slicing with partial-aggregate sharing.

Scotty [60] splits the stream into non-overlapping *slices*, partially
aggregates each slice once, and assembles every (possibly overlapping)
window from slice partials — so "partial results between concurrent
windows" are shared "to reduce memory usage and avoid duplicate
processing of a single event" (Section 5, Evaluated Approaches).

For count measures the slice size is ``gcd(length, step)``; each sliding
window is then a contiguous run of ``length / gcd`` slices.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Deque

from repro.aggregates.base import AggregateFunction
from repro.streams.batch import EventBatch
from repro.windows.base import SlidingCountWindow, TumblingCountWindow


@dataclass(frozen=True)
class WindowResult:
    """An emitted window aggregate."""

    window_index: int
    result: float
    count: int


class CountSlicer:
    """Slicing aggregator for (tumbling or sliding) count windows.

    Tumbling windows are treated as sliding windows with
    ``step == length`` (a single slice per window).
    """

    def __init__(self, spec: TumblingCountWindow | SlidingCountWindow,
                 fn: AggregateFunction) -> None:
        spec.validate()
        if isinstance(spec, TumblingCountWindow):
            self.length, self.step = spec.length, spec.length
        else:
            self.length, self.step = spec.length, spec.step
        self.fn = fn
        self.slice_size = math.gcd(self.length, self.step)
        self.slices_per_window = self.length // self.slice_size
        self.slices_per_step = self.step // self.slice_size
        # Completed slice partials, oldest first; _first_slice is the
        # absolute index of slices[0].
        self._slices: Deque = deque()
        self._first_slice = 0
        self._next_window = 0
        # The open (incomplete) slice.
        self._open_partial = fn.identity()
        self._open_count = 0
        # Statistics: every event is lifted exactly once; each window
        # emission combines slices_per_window partials.
        self.events_lifted = 0
        self.partial_combines = 0

    def add(self, batch: EventBatch) -> list[WindowResult]:
        """Feed a batch; return every window it completes, in order."""
        out: list[WindowResult] = []
        while len(batch):
            need = self.slice_size - self._open_count
            head, batch = batch.split(need)
            if len(head):
                self._open_partial = self.fn.combine(
                    self._open_partial, self.fn.lift(head))
                self._open_count += len(head)
                self.events_lifted += len(head)
            if self._open_count == self.slice_size:
                self._slices.append(self._open_partial)
                self._open_partial = self.fn.identity()
                self._open_count = 0
                out.extend(self._emit_ready())
        return out

    def _emit_ready(self) -> list[WindowResult]:
        """Emit every window whose slices are all complete."""
        out: list[WindowResult] = []
        while True:
            start = self._next_window * self.slices_per_step
            end = start + self.slices_per_window
            if end > self._first_slice + len(self._slices):
                break
            partial = self.fn.identity()
            for i in range(start - self._first_slice,
                           end - self._first_slice):
                partial = self.fn.combine(partial, self._slices[i])
                self.partial_combines += 1
            out.append(WindowResult(self._next_window,
                                    self.fn.lower(partial),
                                    self.length))
            self._next_window += 1
            # Evict slices no future window references.
            keep_from = self._next_window * self.slices_per_step
            while self._first_slice < keep_from and self._slices:
                self._slices.popleft()
                self._first_slice += 1
        return out


def union_slice_size(
        specs: Iterable[TumblingCountWindow | SlidingCountWindow]) -> int:
    """Shared slice size for a *set* of count windows: the gcd of every
    registered length and step, so all windows' edges fall on slice
    boundaries (the union of the windows' edges is a subset of the
    slice grid).  Scotty's per-query ``gcd(length, step)`` generalizes
    to this when many standing queries share one stream; the
    multi-query engine reports it as each group's ``slice_grid``.
    Returns 0 for an empty set (``gcd`` identity).
    """
    g = 0
    for spec in specs:
        step = (spec.step if isinstance(spec, SlidingCountWindow)
                else spec.length)
        g = math.gcd(g, math.gcd(spec.length, step))
    return g


def naive_window_cost(n_events: int, length: int, step: int) -> int:
    """Events processed by a non-sharing implementation (every window
    re-aggregates all its events); baseline for the sharing benefit."""
    n_windows = max(0, (n_events - length) // step + 1)
    return n_windows * length


def slicing_window_cost(n_events: int, length: int, step: int) -> int:
    """Work units for the slicing implementation: one lift per event plus
    one combine per slice per window."""
    g = math.gcd(length, step)
    n_windows = max(0, (n_events - length) // step + 1)
    return n_events + n_windows * (length // g)
