"""Window substrate: specs, operators, and Scotty-style slicing."""

from repro.windows.base import (SessionWindow, SlidingCountWindow,
                                SlidingTimeWindow, TumblingCountWindow,
                                TumblingTimeWindow, WindowKind,
                                WindowMeasure, WindowSpec)
from repro.windows.count import SlidingCountOperator, TumblingCountOperator
from repro.windows.session import SessionOperator
from repro.windows.slicer import (CountSlicer, WindowResult,
                                  naive_window_cost, slicing_window_cost)
from repro.windows.time import SlidingTimeOperator, TumblingTimeOperator

__all__ = [
    "WindowSpec",
    "WindowKind",
    "WindowMeasure",
    "TumblingCountWindow",
    "SlidingCountWindow",
    "TumblingTimeWindow",
    "SlidingTimeWindow",
    "SessionWindow",
    "TumblingCountOperator",
    "SlidingCountOperator",
    "TumblingTimeOperator",
    "SlidingTimeOperator",
    "SessionOperator",
    "CountSlicer",
    "WindowResult",
    "naive_window_cost",
    "slicing_window_cost",
]
