"""Time-based window operators.

Windows are aligned to the epoch: tumbling time window ``k`` spans
``[k * length, (k + 1) * length)`` ticks.  A window is emitted once an
event at or past its end is observed (event-time completion), matching
the watermark-free single-source setting used by the substrate baselines.
"""

from __future__ import annotations


import numpy as np

from repro.errors import StreamError
from repro.streams.batch import EventBatch
from repro.windows.base import SlidingTimeWindow, TumblingTimeWindow


class TumblingTimeOperator:
    """Stream operator emitting tumbling time windows."""

    def __init__(self, spec: TumblingTimeWindow) -> None:
        spec.validate()
        self.spec = spec
        self._pending: list[EventBatch] = []
        self._current_window = 0  # index of the open window

    def add(self, batch: EventBatch) -> list[tuple[int, EventBatch]]:
        """Feed a timestamp-sorted batch; return ``(window_index, events)``
        pairs for every window the batch completes."""
        if not batch.is_ts_sorted():
            raise StreamError("time windows require timestamp-sorted input")
        out: list[tuple[int, EventBatch]] = []
        length = self.spec.length_ticks
        while len(batch):
            window_end = (self._current_window + 1) * length
            in_window = int(np.searchsorted(batch.ts, window_end,
                                            side="left"))
            head, batch = batch.split(in_window)
            if len(head):
                self._pending.append(head)
            if len(batch):  # an event at/past window_end closes the window
                out.append((self._current_window,
                            EventBatch.concat(self._pending)))
                self._pending = []
                # Jump to the window containing the next event; windows
                # with no events are not emitted (dataflow semantics).
                self._current_window = int(batch.ts[0]) // length
        return out

    def flush(self) -> tuple[int, EventBatch]:
        """Close and return the currently open window."""
        window = (self._current_window, EventBatch.concat(self._pending))
        self._pending = []
        self._current_window += 1
        return window


class SlidingTimeOperator:
    """Stream operator emitting sliding time windows.

    Window ``k`` spans ``[k * step, k * step + length)``.  Implemented by
    retaining the last ``length`` ticks of events.
    """

    def __init__(self, spec: SlidingTimeWindow) -> None:
        spec.validate()
        self.spec = spec
        self._tail = EventBatch.empty()
        self._next_window = 0

    def add(self, batch: EventBatch) -> list[tuple[int, EventBatch]]:
        """Feed a timestamp-sorted batch; return completed windows."""
        if not batch.is_ts_sorted():
            raise StreamError("time windows require timestamp-sorted input")
        self._tail = EventBatch.concat([self._tail, batch])
        if len(self._tail) == 0:
            return []
        out: list[tuple[int, EventBatch]] = []
        length, step = self.spec.length_ticks, self.spec.step_ticks
        max_ts = int(self._tail.ts[-1])
        # Window k is complete once an event at/past its end exists.
        while self._next_window * step + length <= max_ts:
            k = self._next_window
            lo = int(np.searchsorted(self._tail.ts, k * step, side="left"))
            hi = int(np.searchsorted(self._tail.ts, k * step + length,
                                     side="left"))
            out.append((k, self._tail.slice_range(lo, hi)))
            self._next_window += 1
        # Evict events before the next window's start.
        cutoff = self._next_window * step
        evict = int(np.searchsorted(self._tail.ts, cutoff, side="left"))
        if evict:
            self._tail = self._tail.drop(evict)
        return out
